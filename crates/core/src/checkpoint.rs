//! Crash-safe checkpointing of an in-progress anytime run.
//!
//! A [`Checkpoint`] captures the full anytime state at a block boundary —
//! the 7-state table, the super-node registry and its disjoint-set
//! structure, the phase cursors, the noise list, and the work lists — plus
//! fingerprints of the configuration and the graph, so a resumed run
//! provably continues the same computation (Lemma 4: it converges to the
//! same clustering as an uninterrupted run).
//!
//! # `ASCK` v2 on-disk format
//!
//! All integers little-endian, via [`anyscan_graph::io::framing`]:
//!
//! | section      | contents                                                   |
//! |--------------|------------------------------------------------------------|
//! | header       | magic `ASCK`, version u32                                  |
//! | config       | ε f64, μ u64, α u64, β u64, threads u64, seed u64, flags u32, then (v2+) sketch rows u32, sketch bits u32, hub cap u32, hub min-degree u32, probe ratio u32 |
//! | graph        | n u64, arcs u64, edges u64, structure hash u64 (FNV-1a)    |
//! | progress     | phase u8, phase_initialized u8, draw/work cursors u64, blocks u64, cumulative ns u64, union marks 3×u64, shared base u64 |
//! | states       | n vertex-state bytes                                       |
//! | nei          | n × u32 certified-neighbor counts                          |
//! | super-nodes  | count u64, reps u32[], member offsets u64[], members u32[] |
//! | memberships  | offsets u64[n+1], flat u32[] (`SN_v` per vertex)           |
//! | dsu          | shared u8, len u64, canonical roots u32[], finds u64, unions u64 |
//! | noise list   | count u64, vertices u32[], offsets u64[], flat `N^ε` u32[] |
//! | work         | len u64, u32[]; aux len u64, u64[] (`u64::MAX` = none)     |
//! | trailer      | FNV-1a 64 checksum of everything above                     |
//!
//! Files are written atomically: temp file in the same directory, `fsync`,
//! rename over the target — a crash mid-write never corrupts an existing
//! checkpoint.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use anyscan_dsu::{AtomicDsu, DsuCounters, DsuSeq, LockedDsu, SharedDsu};
use anyscan_graph::io::framing::{self, Fnv64};
use anyscan_graph::{CsrGraph, ReorderMode, VertexId};
use anyscan_scan_common::sketch::{self, SketchMode};
use anyscan_scan_common::ScanParams;
use anyscan_telemetry::Telemetry;

use crate::config::{AnyScanConfig, DsuKind};
use crate::driver::{AnyScan, Phase, SharedDsuImpl, UnionBreakdown};
use crate::error::{AnyScanError, ErrorKind};
use crate::state::StateTable;
use crate::supernode::{SuperNode, SuperNodes};

use anyscan_graph::io::framing::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes of the checkpoint format.
pub const MAGIC: &[u8; 4] = b"ASCK";
/// Current format version. v2 adds the sketch-mode code (flags bits 11–12)
/// and a five-`u32` tuning tail (sketch rows/bits, hub cap/floor, probe
/// ratio) after the flags word; v1 images decode with the defaults those
/// runs actually used.
pub const VERSION: u32 = 2;
/// Oldest format version [`Checkpoint::from_bytes`] still reads.
pub const MIN_VERSION: u32 = 1;

const AUX_NONE: u64 = u64::MAX;

/// Structural identity of the graph a checkpoint was taken against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GraphFingerprint {
    n: u64,
    arcs: u64,
    edges: u64,
    hash: u64,
}

impl GraphFingerprint {
    fn of(g: &CsrGraph) -> GraphFingerprint {
        let mut h = Fnv64::new();
        for v in g.vertices() {
            h.update_u32(v);
            for (q, w) in g.neighbors(v) {
                h.update_u32(q);
                h.update_u64(w.to_bits());
            }
        }
        GraphFingerprint {
            n: g.num_vertices() as u64,
            arcs: g.num_arcs() as u64,
            edges: g.num_edges(),
            hash: h.finish(),
        }
    }
}

/// A serializable snapshot of an [`AnyScan`] run at a block boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    config: AnyScanConfig,
    graph: GraphFingerprint,
    phase: Phase,
    phase_initialized: bool,
    draw_cursor: u64,
    work_cursor: u64,
    blocks: u64,
    cumulative_ns: u64,
    union_marks: UnionBreakdown,
    shared_union_base: u64,
    states: Vec<u8>,
    nei: Vec<u32>,
    sn_nodes: Vec<SuperNode>,
    memberships: Vec<Vec<u32>>,
    dsu_shared: bool,
    dsu_roots: Vec<u32>,
    dsu_counters: DsuCounters,
    noise: Vec<(VertexId, Vec<VertexId>)>,
    work: Vec<VertexId>,
    work_aux: Vec<Option<usize>>,
}

impl Checkpoint {
    /// Captures the current state of `algo`. Call only at a block boundary
    /// (i.e. between [`AnyScan::step`] calls), where Lemma 1 guarantees a
    /// consistent snapshot.
    pub(crate) fn capture(algo: &AnyScan<'_>) -> Checkpoint {
        let (nodes, memberships) = algo.sn.parts();
        // Counters first: shared-DSU find() below bumps the find counter.
        let (dsu_shared, dsu_counters, dsu_roots) = match (&algo.dsu_seq, &algo.dsu_shared) {
            (Some(seq), _) => (false, seq.counters(), seq.roots()),
            (None, Some(shared)) => {
                let counters = shared.counters();
                let roots = (0..shared.len() as u32).map(|x| shared.find(x)).collect();
                (true, counters, roots)
            }
            (None, None) => unreachable!("one DSU always exists"),
        };
        Checkpoint {
            config: algo.config,
            graph: GraphFingerprint::of(algo.graph()),
            phase: algo.phase,
            phase_initialized: algo.phase_initialized,
            draw_cursor: algo.draw_cursor as u64,
            work_cursor: algo.work_cursor as u64,
            blocks: algo.blocks_executed(),
            cumulative_ns: algo.cumulative.as_nanos() as u64,
            union_marks: algo.union_marks,
            shared_union_base: algo.shared_union_base,
            states: algo.states.raw_bytes(),
            nei: algo.nei.iter().map(|a| a.load(Ordering::Acquire)).collect(),
            sn_nodes: nodes.to_vec(),
            memberships: memberships.to_vec(),
            dsu_shared,
            dsu_roots,
            dsu_counters,
            noise: algo.noise_list.clone(),
            work: algo.work.clone(),
            work_aux: algo.work_aux.clone(),
        }
    }

    /// SCAN parameters the run was started with.
    pub fn params(&self) -> ScanParams {
        self.config.params
    }

    /// The captured configuration; `threads == 0` keeps the checkpointed
    /// thread count, any other value overrides it (thread count does not
    /// affect the clustering, only the schedule).
    pub fn config(&self, threads: usize) -> AnyScanConfig {
        let mut config = self.config;
        if threads > 0 {
            config.threads = threads;
        }
        config
    }

    /// Phase the run was in when captured.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Block iterations the captured run had executed.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    // ---- serialization ----------------------------------------------------

    /// Serializes to the `ASCK` v1 byte image (checksum trailer included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64 + self.states.len() * 8);
        framing::put_header(&mut buf, MAGIC, VERSION);

        // Config fingerprint.
        let c = &self.config;
        buf.put_f64_le(c.params.epsilon);
        buf.put_u64_le(c.params.mu as u64);
        buf.put_u64_le(c.alpha as u64);
        buf.put_u64_le(c.beta as u64);
        buf.put_u64_le(c.threads as u64);
        buf.put_u64_le(c.seed);
        let mut flags = 0u32;
        for (bit, on) in [
            c.optimizations,
            c.sort_step2,
            c.sort_step3,
            c.skip_step2,
            c.dsu == DsuKind::Locked,
            c.edge_cache,
            c.resolve_roles,
        ]
        .into_iter()
        .enumerate()
        {
            if on {
                flags |= 1 << bit;
            }
        }
        // Bits 7–8: reorder-mode code; bit 9: hub bitmaps; bit 10: batched
        // Step 1. Pre-existing checkpoints have all three zero, which decodes
        // as (None, off, off) — exactly how those runs were executed.
        flags |= u32::from(c.reorder.code()) << 7;
        if c.hub_bitmaps {
            flags |= 1 << 9;
        }
        if c.batched_step1 {
            flags |= 1 << 10;
        }
        // Bits 11–12: sketch-mode code. v1 checkpoints have both zero,
        // which decodes as Off — how those runs were executed.
        flags |= u32::from(c.sketch.code()) << 11;
        buf.put_u32_le(flags);
        // v2 tuning tail. The sketch seed is deliberately absent: signatures
        // are rebuilt from the run seed above, so a resumed run provably
        // reconstructs the identical sketches.
        buf.put_u32_le(c.sketch_rows as u32);
        buf.put_u32_le(c.sketch_bits);
        buf.put_u32_le(c.hub_max_hubs.min(u32::MAX as usize) as u32);
        buf.put_u32_le(c.hub_min_degree.min(u32::MAX as usize) as u32);
        buf.put_u32_le(c.probe_ratio.min(u32::MAX as usize) as u32);

        // Graph fingerprint.
        buf.put_u64_le(self.graph.n);
        buf.put_u64_le(self.graph.arcs);
        buf.put_u64_le(self.graph.edges);
        buf.put_u64_le(self.graph.hash);

        // Progress.
        buf.put_slice(&[phase_code(self.phase), self.phase_initialized as u8]);
        buf.put_u64_le(self.draw_cursor);
        buf.put_u64_le(self.work_cursor);
        buf.put_u64_le(self.blocks);
        buf.put_u64_le(self.cumulative_ns);
        buf.put_u64_le(self.union_marks.step1);
        buf.put_u64_le(self.union_marks.step2);
        buf.put_u64_le(self.union_marks.step3);
        buf.put_u64_le(self.shared_union_base);

        // Vertex states and certified-neighbor counts.
        buf.put_u64_le(self.states.len() as u64);
        buf.put_slice(&self.states);
        framing::put_u32_array(&mut buf, &self.nei);

        // Super-nodes: reps, then member lists as CSR.
        buf.put_u64_le(self.sn_nodes.len() as u64);
        for node in &self.sn_nodes {
            buf.put_u32_le(node.rep);
        }
        put_csr(&mut buf, self.sn_nodes.iter().map(|n| n.members.as_slice()));

        // Memberships (SN_v) as CSR over all n vertices. Kept separate from
        // the member lists: Step 4 adoption attaches vertices to super-nodes
        // without extending any node's member list.
        put_csr(&mut buf, self.memberships.iter().map(Vec::as_slice));

        // DSU partition (canonical parent forest) + operation counters.
        buf.put_slice(&[self.dsu_shared as u8]);
        buf.put_u32_le(self.dsu_roots.len() as u32);
        framing::put_u32_array(&mut buf, &self.dsu_roots);
        buf.put_u64_le(self.dsu_counters.finds);
        buf.put_u64_le(self.dsu_counters.unions);

        // Noise list: vertices + their stored ε-neighborhoods as CSR.
        buf.put_u64_le(self.noise.len() as u64);
        for (v, _) in &self.noise {
            buf.put_u32_le(*v);
        }
        put_csr(&mut buf, self.noise.iter().map(|(_, nb)| nb.as_slice()));

        // Work lists.
        buf.put_u64_le(self.work.len() as u64);
        framing::put_u32_array(&mut buf, &self.work);
        buf.put_u64_le(self.work_aux.len() as u64);
        for a in &self.work_aux {
            buf.put_u64_le(a.map_or(AUX_NONE, |i| i as u64));
        }

        framing::put_checksum_trailer(&mut buf);
        buf.into()
    }

    /// Parses an `ASCK` byte image, verifying the checksum trailer and every
    /// structural bound. Corruption yields a typed error, never a panic.
    pub fn from_bytes(raw: Vec<u8>) -> Result<Checkpoint, AnyScanError> {
        framing::peek_version(&raw, MAGIC)?;
        let mut buf = framing::strip_checksum_trailer(raw)?;
        let version = framing::get_header_versioned(&mut buf, MAGIC, MIN_VERSION..=VERSION)?;

        // Config fingerprint.
        let epsilon = get_f64(&mut buf)?;
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon > 1.0 {
            return Err(corrupt(format!("epsilon {epsilon} outside (0, 1]")));
        }
        let mu = get_len(&mut buf, "mu")?;
        if mu == 0 {
            return Err(corrupt("mu must be at least 1"));
        }
        let alpha = get_len(&mut buf, "alpha")?;
        let beta = get_len(&mut buf, "beta")?;
        let threads = get_len(&mut buf, "threads")?;
        let seed = get_u64(&mut buf)?;
        let flags = get_u32(&mut buf)?;
        if alpha == 0 || beta == 0 || threads == 0 {
            return Err(corrupt("alpha, beta, and threads must be positive"));
        }
        let sketch = SketchMode::from_code(((flags >> 11) & 0b11) as u8)
            .ok_or_else(|| corrupt(format!("unknown sketch-mode code in flags {flags:#x}")))?;
        let defaults = AnyScanConfig::default();
        let (sketch_rows, sketch_bits, hub_max_hubs, hub_min_degree, probe_ratio) = if version >= 2
        {
            (
                get_u32(&mut buf)? as usize,
                get_u32(&mut buf)?,
                get_u32(&mut buf)? as usize,
                get_u32(&mut buf)? as usize,
                get_u32(&mut buf)? as usize,
            )
        } else {
            (
                defaults.sketch_rows,
                defaults.sketch_bits,
                defaults.hub_max_hubs,
                defaults.hub_min_degree,
                defaults.probe_ratio,
            )
        };
        if sketch != SketchMode::Off {
            if sketch_rows == 0 || sketch_rows > sketch::MAX_ROWS {
                return Err(corrupt(format!(
                    "sketch rows {sketch_rows} outside 1..={}",
                    sketch::MAX_ROWS
                )));
            }
            if !sketch::VALID_BITS.contains(&sketch_bits) {
                return Err(corrupt(format!("invalid sketch bits {sketch_bits}")));
            }
        }
        if probe_ratio == 0 {
            return Err(corrupt("probe ratio must be positive"));
        }
        let config = AnyScanConfig {
            params: ScanParams::new(epsilon, mu),
            alpha,
            beta,
            threads,
            seed,
            optimizations: flags & 1 != 0,
            sort_step2: flags & (1 << 1) != 0,
            sort_step3: flags & (1 << 2) != 0,
            skip_step2: flags & (1 << 3) != 0,
            dsu: if flags & (1 << 4) != 0 {
                DsuKind::Locked
            } else {
                DsuKind::Atomic
            },
            edge_cache: flags & (1 << 5) != 0,
            resolve_roles: flags & (1 << 6) != 0,
            reorder: ReorderMode::from_code(((flags >> 7) & 0b11) as u8)
                .ok_or_else(|| corrupt(format!("unknown reorder code in flags {flags:#x}")))?,
            hub_bitmaps: flags & (1 << 9) != 0,
            batched_step1: flags & (1 << 10) != 0,
            sketch,
            sketch_rows,
            sketch_bits,
            hub_max_hubs,
            hub_min_degree,
            probe_ratio,
        };

        // Graph fingerprint.
        let graph = GraphFingerprint {
            n: get_u64(&mut buf)?,
            arcs: get_u64(&mut buf)?,
            edges: get_u64(&mut buf)?,
            hash: get_u64(&mut buf)?,
        };
        let n = usize::try_from(graph.n).map_err(|_| corrupt("graph size overflows usize"))?;

        // Progress.
        let phase = phase_from(get_u8(&mut buf)?)?;
        let phase_initialized = match get_u8(&mut buf)? {
            0 => false,
            1 => true,
            b => return Err(corrupt(format!("invalid phase_initialized byte {b}"))),
        };
        let draw_cursor = get_u64(&mut buf)?;
        let work_cursor = get_u64(&mut buf)?;
        let blocks = get_u64(&mut buf)?;
        let cumulative_ns = get_u64(&mut buf)?;
        let union_marks = UnionBreakdown {
            step1: get_u64(&mut buf)?,
            step2: get_u64(&mut buf)?,
            step3: get_u64(&mut buf)?,
        };
        let shared_union_base = get_u64(&mut buf)?;
        if draw_cursor > graph.n {
            return Err(corrupt(format!(
                "draw cursor {draw_cursor} past {} vertices",
                graph.n
            )));
        }

        // Vertex states and certified-neighbor counts.
        let states_len = get_len(&mut buf, "state table length")?;
        if states_len != n {
            return Err(corrupt(format!(
                "state table covers {states_len} vertices, graph has {n}"
            )));
        }
        framing::need(&buf, states_len)?;
        let mut states = vec![0u8; states_len];
        buf.copy_to_slice(&mut states);
        let nei = framing::get_u32_array(&mut buf, n)?;

        // Super-nodes.
        let sn_count = get_len(&mut buf, "super-node count")?;
        if sn_count > n {
            return Err(corrupt(format!("{sn_count} super-nodes for {n} vertices")));
        }
        let reps = framing::get_u32_array(&mut buf, sn_count)?;
        let member_lists = get_csr(&mut buf, sn_count, n as u32, "super-node members")?;
        let sn_nodes: Vec<SuperNode> = reps
            .into_iter()
            .zip(member_lists)
            .map(|(rep, members)| SuperNode { rep, members })
            .collect();
        for (id, node) in sn_nodes.iter().enumerate() {
            if node.rep as usize >= n {
                return Err(corrupt(format!(
                    "super-node {id}: representative {} out of range",
                    node.rep
                )));
            }
        }

        // Memberships.
        let memberships = get_csr(&mut buf, n, sn_count as u32, "memberships")?;

        // DSU.
        let dsu_shared = match get_u8(&mut buf)? {
            0 => false,
            1 => true,
            b => return Err(corrupt(format!("invalid DSU tag {b}"))),
        };
        let dsu_len = get_u32(&mut buf)? as usize;
        if dsu_len != sn_count {
            return Err(corrupt(format!(
                "DSU tracks {dsu_len} elements, expected one per super-node ({sn_count})"
            )));
        }
        let dsu_roots = framing::get_u32_array(&mut buf, dsu_len)?;
        let dsu_counters = DsuCounters {
            finds: get_u64(&mut buf)?,
            unions: get_u64(&mut buf)?,
        };

        // Noise list.
        let noise_count = get_len(&mut buf, "noise-list length")?;
        if noise_count > n {
            return Err(corrupt(format!(
                "noise list holds {noise_count} vertices, graph has {n}"
            )));
        }
        let noise_vertices = framing::get_u32_array(&mut buf, noise_count)?;
        for &v in &noise_vertices {
            if v as usize >= n {
                return Err(corrupt(format!("noise vertex {v} out of range")));
            }
        }
        let neighborhoods = get_csr(&mut buf, noise_count, n as u32, "noise neighborhoods")?;
        let noise: Vec<(VertexId, Vec<VertexId>)> =
            noise_vertices.into_iter().zip(neighborhoods).collect();

        // Work lists.
        let work_len = get_len(&mut buf, "work-list length")?;
        if work_len > n {
            return Err(corrupt(format!(
                "work list holds {work_len} entries, graph has {n} vertices"
            )));
        }
        let work = framing::get_u32_array(&mut buf, work_len)?;
        for &v in &work {
            if v as usize >= n {
                return Err(corrupt(format!("work vertex {v} out of range")));
            }
        }
        if work_cursor as usize > work_len {
            return Err(corrupt(format!(
                "work cursor {work_cursor} past work list of {work_len}"
            )));
        }
        let aux_len = get_len(&mut buf, "aux-list length")?;
        if aux_len != 0 && aux_len != work_len {
            return Err(corrupt(format!(
                "aux list length {aux_len} disagrees with work list {work_len}"
            )));
        }
        framing::need(&buf, aux_len * 8)?;
        let mut work_aux = Vec::with_capacity(aux_len);
        for i in 0..aux_len {
            let v = buf.get_u64_le();
            if v == AUX_NONE {
                work_aux.push(None);
            } else if (v as usize) < noise_count {
                work_aux.push(Some(v as usize));
            } else {
                return Err(corrupt(format!(
                    "aux entry {i}: noise index {v} out of range"
                )));
            }
        }

        if buf.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes after checkpoint payload",
                buf.remaining()
            )));
        }

        Ok(Checkpoint {
            config,
            graph,
            phase,
            phase_initialized,
            draw_cursor,
            work_cursor,
            blocks,
            cumulative_ns,
            union_marks,
            shared_union_base,
            states,
            nei,
            sn_nodes,
            memberships,
            dsu_shared,
            dsu_roots,
            dsu_counters,
            noise,
            work,
            work_aux,
        })
    }

    /// Serializes into `writer` (the full byte image, trailer included).
    pub fn write_to<W: std::io::Write>(&self, writer: &mut W) -> Result<(), AnyScanError> {
        writer
            .write_all(&self.to_bytes())
            .map_err(|e| AnyScanError::io("writing checkpoint", e))
    }

    /// Reads a checkpoint from `reader` (consumes it to EOF).
    pub fn read_from<R: std::io::Read>(reader: &mut R) -> Result<Checkpoint, AnyScanError> {
        let mut raw = Vec::new();
        reader
            .read_to_end(&mut raw)
            .map_err(|e| AnyScanError::io("reading checkpoint", e))?;
        Checkpoint::from_bytes(raw)
    }

    /// Writes the checkpoint to `path` atomically: temp file in the same
    /// directory, `fsync`, rename. An existing checkpoint at `path` survives
    /// any crash mid-write.
    pub fn save(&self, path: &Path) -> Result<(), AnyScanError> {
        let ctx = |what: &str| format!("{what} checkpoint {}", path.display());
        anyscan_faults::inject_io("checkpoint::write")
            .map_err(|e| AnyScanError::io(ctx("writing"), e))?;
        let mut bytes = self.to_bytes();
        anyscan_faults::inject_write("checkpoint::write", &mut bytes)
            .map_err(|e| AnyScanError::io(ctx("writing"), e))?;

        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(AnyScanError::io(ctx("writing"), e));
        }
        // Make the rename itself durable where the platform allows it.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and verifies a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, AnyScanError> {
        let ctx = format!("reading checkpoint {}", path.display());
        anyscan_faults::inject_io("checkpoint::read")
            .map_err(|e| AnyScanError::io(ctx.clone(), e))?;
        let raw = std::fs::read(path).map_err(|e| AnyScanError::io(ctx, e))?;
        Checkpoint::from_bytes(raw)
    }

    // ---- restore ----------------------------------------------------------

    /// Rebuilds a runnable [`AnyScan`] over `g` from this checkpoint.
    /// `threads == 0` keeps the checkpointed thread count. Fails with
    /// [`ErrorKind::Checkpoint`] when `g` is not the graph the checkpoint
    /// was taken against.
    pub fn restore<'g>(
        &self,
        g: &'g CsrGraph,
        threads: usize,
    ) -> Result<AnyScan<'g>, AnyScanError> {
        let actual = GraphFingerprint::of(g);
        if actual != self.graph {
            return Err(AnyScanError::new(
                ErrorKind::Checkpoint,
                format!(
                    "graph mismatch: checkpoint taken against |V|={} arcs={} hash={:#018x}, \
                     given |V|={} arcs={} hash={:#018x}",
                    self.graph.n,
                    self.graph.arcs,
                    self.graph.hash,
                    actual.n,
                    actual.arcs,
                    actual.hash
                ),
            ));
        }
        let n = g.num_vertices();
        for (v, sns) in self.memberships.iter().enumerate() {
            for &snid in sns {
                if snid as usize >= self.sn_nodes.len() {
                    return Err(AnyScanError::new(
                        ErrorKind::Checkpoint,
                        format!("vertex {v}: membership in unknown super-node {snid}"),
                    ));
                }
            }
        }

        let mut algo = AnyScan::new(g, self.config(threads));
        algo.states = StateTable::from_raw(self.states.clone())
            .map_err(|m| AnyScanError::new(ErrorKind::Checkpoint, m))?;
        algo.nei = self.nei.iter().map(|&v| AtomicU32::new(v)).collect();
        algo.sn = SuperNodes::from_parts(self.sn_nodes.clone(), self.memberships.clone());

        let seq = DsuSeq::from_parts(self.dsu_roots.clone(), self.dsu_counters)
            .map_err(|m| AnyScanError::new(ErrorKind::Checkpoint, m))?;
        if self.dsu_shared {
            // Rebuild the variant directly (not SharedDsuImpl::from_seq,
            // whose Locked arm deliberately resets counters at the Step-1
            // handoff): a resumed run continues the checkpointed tallies.
            algo.dsu_seq = None;
            algo.dsu_shared = Some(match algo.config.dsu {
                DsuKind::Atomic => SharedDsuImpl::Atomic(AtomicDsu::from_seq(&seq)),
                DsuKind::Locked => SharedDsuImpl::Locked(LockedDsu::from_seq(seq)),
            });
        } else {
            algo.dsu_seq = Some(seq);
            algo.dsu_shared = None;
        }

        algo.noise_list = self.noise.clone();
        algo.work = self.work.clone();
        algo.work_aux = self.work_aux.clone();
        algo.work_cursor = self.work_cursor as usize;
        algo.draw_cursor = (self.draw_cursor as usize).min(n);
        algo.phase = self.phase;
        algo.phase_initialized = self.phase_initialized;
        algo.iteration_base = self.blocks as usize;
        algo.cumulative = Duration::from_nanos(self.cumulative_ns);
        algo.union_marks = self.union_marks;
        algo.shared_union_base = self.shared_union_base;
        Ok(algo)
    }

    /// [`restore`](Self::restore) with telemetry attached to the resumed run.
    pub fn restore_with_telemetry<'g>(
        &self,
        g: &'g CsrGraph,
        threads: usize,
        telemetry: Telemetry,
    ) -> Result<AnyScan<'g>, AnyScanError> {
        Ok(self.restore(g, threads)?.with_telemetry(telemetry))
    }
}

fn phase_code(p: Phase) -> u8 {
    match p {
        Phase::Summarize => 0,
        Phase::MergeStrong => 1,
        Phase::MergeWeak => 2,
        Phase::Borders => 3,
        Phase::ResolveRoles => 4,
        Phase::Done => 5,
    }
}

fn phase_from(code: u8) -> Result<Phase, AnyScanError> {
    Ok(match code {
        0 => Phase::Summarize,
        1 => Phase::MergeStrong,
        2 => Phase::MergeWeak,
        3 => Phase::Borders,
        4 => Phase::ResolveRoles,
        5 => Phase::Done,
        b => return Err(corrupt(format!("invalid phase discriminant {b}"))),
    })
}

fn corrupt(message: impl Into<String>) -> AnyScanError {
    AnyScanError::new(ErrorKind::Corrupt, message)
}

/// Writes ragged u32 lists as CSR: offsets (count+1, u64), then the flat
/// concatenation.
fn put_csr<'a>(buf: &mut BytesMut, lists: impl Iterator<Item = &'a [u32]> + Clone) {
    let mut offset = 0u64;
    buf.put_u64_le(offset);
    for list in lists.clone() {
        offset += list.len() as u64;
        buf.put_u64_le(offset);
    }
    for list in lists {
        framing::put_u32_array(buf, list);
    }
}

/// Reads `count` ragged lists written by [`put_csr`], bounding every id by
/// `id_bound`.
fn get_csr(
    buf: &mut Bytes,
    count: usize,
    id_bound: u32,
    what: &str,
) -> Result<Vec<Vec<u32>>, AnyScanError> {
    let offsets = framing::get_usize_array(buf, count + 1)?;
    let total = *offsets.last().expect("count + 1 >= 1 offsets");
    framing::need(buf, total.saturating_mul(4))?;
    framing::check_offsets(&offsets, total, what)?;
    let flat = framing::get_u32_array(buf, total)?;
    for &id in &flat {
        if id >= id_bound {
            return Err(corrupt(format!(
                "{what}: id {id} out of range (< {id_bound})"
            )));
        }
    }
    Ok(offsets
        .windows(2)
        .map(|w| flat[w[0]..w[1]].to_vec())
        .collect())
}

/// Scalar readers with truncation checks (the raw `Buf` getters panic on
/// underflow).
fn get_u8(buf: &mut Bytes) -> Result<u8, AnyScanError> {
    framing::need(buf, 1)?;
    let mut b = [0u8; 1];
    buf.copy_to_slice(&mut b);
    Ok(b[0])
}

fn get_u32(buf: &mut Bytes) -> Result<u32, AnyScanError> {
    framing::need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, AnyScanError> {
    framing::need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, AnyScanError> {
    framing::need(buf, 8)?;
    Ok(buf.get_f64_le())
}

/// Reads a u64 that must fit a usize-indexed structure.
fn get_len(buf: &mut Bytes, what: &str) -> Result<usize, AnyScanError> {
    let v = get_u64(buf)?;
    usize::try_from(v).map_err(|_| corrupt(format!("{what} {v} overflows usize")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;

    fn toy_graph() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap()
    }

    fn toy_config() -> AnyScanConfig {
        AnyScanConfig::new(ScanParams::new(0.7, 3)).with_block_size(2)
    }

    #[test]
    fn roundtrips_at_every_block_boundary() {
        let g = toy_graph();
        let mut algo = AnyScan::new(&g, toy_config());
        loop {
            let ck = algo.checkpoint();
            let bytes = ck.to_bytes();
            let back = Checkpoint::from_bytes(bytes).expect("roundtrip parses");
            assert_eq!(back.phase(), algo.phase());
            assert_eq!(back.blocks(), algo.blocks_executed());

            // The restored run must finish to the same clustering.
            let mut resumed = back.restore(&g, 0).expect("restore");
            let mut expected = {
                let mut fresh = AnyScan::new(&g, toy_config());
                fresh.run()
            };
            let mut got = resumed.run();
            got.canonicalize();
            expected.canonicalize();
            assert_eq!(got.labels, expected.labels, "resume diverged");
            assert_eq!(got.roles, expected.roles, "roles diverged");

            if algo.phase() == Phase::Done {
                break;
            }
            algo.step();
        }
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = toy_graph();
        let mut algo = AnyScan::new(&g, toy_config());
        algo.step();
        let ck = algo.checkpoint();
        let other = GraphBuilder::from_unweighted_edges(6, vec![(0, 1), (2, 3)]).unwrap();
        match ck.restore(&other, 0) {
            Err(err) => assert_eq!(err.kind(), ErrorKind::Checkpoint),
            Ok(_) => panic!("fingerprint must mismatch"),
        }
    }

    #[test]
    fn save_is_atomic_and_load_verifies() {
        let g = toy_graph();
        let mut algo = AnyScan::new(&g, toy_config());
        algo.step();
        let ck = algo.checkpoint();

        let dir = std::env::temp_dir().join("anyscan-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.asck");
        ck.save(&path).expect("save");
        assert!(!path.with_extension("asck.tmp").exists());
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back.blocks(), ck.blocks());

        // Flip one byte: the checksum must catch it.
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        assert!(
            Checkpoint::from_bytes(raw).is_err(),
            "corruption must be detected"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Byte offset of the v2 five-`u32` tuning tail: header (magic + version)
    /// plus ε f64, four u64 block params, the seed u64, and the flags u32.
    const TUNING_TAIL_AT: usize = 8 + 8 + 8 * 4 + 8 + 4;

    #[test]
    fn v2_roundtrips_sketch_and_tuning_config() {
        let g = toy_graph();
        let config = toy_config()
            .with_sketch(SketchMode::Assist)
            .with_sketch_params(64, 4)
            .with_hub_params(32, 8)
            .with_probe_ratio(4);
        let mut algo = AnyScan::new(&g, config);
        algo.step();
        let back = Checkpoint::from_bytes(algo.checkpoint().to_bytes()).expect("v2 parses");
        let c = back.config(0);
        assert_eq!(c.sketch, SketchMode::Assist);
        assert_eq!((c.sketch_rows, c.sketch_bits), (64, 4));
        assert_eq!((c.hub_max_hubs, c.hub_min_degree), (32, 8));
        assert_eq!(c.probe_ratio, 4);

        // Resume through the sketch-assisted kernel and finish exactly.
        let mut resumed = back.restore(&g, 0).expect("restore").run();
        let mut expected = AnyScan::new(&g, config).run();
        resumed.canonicalize();
        expected.canonicalize();
        assert_eq!(resumed.labels, expected.labels);
    }

    #[test]
    fn v1_image_decodes_with_default_tuning() {
        let g = toy_graph();
        let mut algo = AnyScan::new(&g, toy_config());
        algo.step();
        let v2 = algo.checkpoint().to_bytes();

        // Hand-downgrade: drop the tuning tail, rewrite the version word,
        // and re-stamp the checksum trailer.
        let body = framing::strip_checksum_trailer(v2).unwrap();
        let mut v1: Vec<u8> = body.chunk().to_vec();
        v1.drain(TUNING_TAIL_AT..TUNING_TAIL_AT + 20);
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let mut framed = BytesMut::new();
        framed.put_slice(&v1);
        framing::put_checksum_trailer(&mut framed);

        let back = Checkpoint::from_bytes(framed.into()).expect("v1 parses");
        let defaults = AnyScanConfig::default();
        let c = back.config(0);
        assert_eq!(c.sketch, SketchMode::Off);
        assert_eq!(c.sketch_rows, defaults.sketch_rows);
        assert_eq!(c.sketch_bits, defaults.sketch_bits);
        assert_eq!(c.hub_max_hubs, defaults.hub_max_hubs);
        assert_eq!(c.hub_min_degree, defaults.hub_min_degree);
        assert_eq!(c.probe_ratio, defaults.probe_ratio);
        assert!(back.restore(&g, 0).is_ok(), "v1 image must restore");
    }

    #[test]
    fn unknown_sketch_code_is_rejected() {
        let g = toy_graph();
        let mut algo = AnyScan::new(&g, toy_config());
        algo.step();
        let raw = algo.checkpoint().to_bytes();
        let body = framing::strip_checksum_trailer(raw).unwrap();
        let mut bytes = body.chunk().to_vec();
        // Flags u32 sits right before the tuning tail; force bits 11–12 to
        // the unassigned code 0b11.
        let flags_at = TUNING_TAIL_AT - 4;
        let mut flags = u32::from_le_bytes(bytes[flags_at..flags_at + 4].try_into().unwrap());
        flags |= 0b11 << 11;
        bytes[flags_at..flags_at + 4].copy_from_slice(&flags.to_le_bytes());
        let mut framed = BytesMut::new();
        framed.put_slice(&bytes);
        framing::put_checksum_trailer(&mut framed);
        let err = Checkpoint::from_bytes(framed.into()).expect_err("bad code");
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert!(err.to_string().contains("sketch-mode"), "typed message");
    }
}
