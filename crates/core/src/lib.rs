//! # anySCAN — anytime, parallel structural graph clustering
//!
//! Reproduction of *"Scalable and Interactive Graph Clustering Algorithm on
//! Multicore CPUs"* (Mai et al., ICDE 2017): an **anytime** and **parallel**
//! variant of SCAN over weighted undirected graphs that
//!
//! * quickly produces an approximate clustering and refines it toward
//!   SCAN's exact result — suspend it, inspect a [`driver::AnyScan::snapshot`],
//!   resume it, at any block boundary;
//! * processes vertices in blocks (α for summarization, β for merging) whose
//!   inner phases are parallel-for loops with dynamic scheduling;
//! * is *work-efficient*: its cumulative similarity-evaluation count rivals
//!   pSCAN's, far below SCAN's 2|E|.
//!
//! The algorithm's four steps (paper §III-A):
//! 1. **Summarization** — blocks of α untouched vertices get range queries;
//!    cores become *super-nodes* tracked in a disjoint-set structure.
//! 2. **Merging strongly-related super-nodes** — vertices in ≥ 2 super-nodes
//!    are core-checked; a core merges all its super-nodes (Lemma 2).
//! 3. **Merging weakly-related super-nodes** — remaining candidates merge
//!    clusters across edges between cores with σ ≥ ε (Lemma 3).
//! 4. **Determining border vertices** — noise-list vertices attach to
//!    adjacent cores; leftovers split into hubs and outliers.
//!
//! # Quickstart
//!
//! ```
//! use anyscan::{AnyScan, AnyScanConfig};
//! use anyscan_graph::GraphBuilder;
//! use anyscan_scan_common::ScanParams;
//!
//! // Two triangles joined by a weak bridge.
//! let g = GraphBuilder::from_unweighted_edges(
//!     6,
//!     vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
//! )
//! .unwrap();
//! let config = AnyScanConfig::new(ScanParams::new(0.7, 3));
//! let mut algo = AnyScan::new(&g, config);
//! let result = algo.run();
//! assert_eq!(result.num_clusters(), 2);
//! ```

pub mod checkpoint;
pub mod config;
pub mod control;
pub mod driver;
pub mod error;
pub mod explore;
pub mod hierarchy;
pub mod incremental;
pub mod snapshot;
pub mod state;
pub mod supernode;

mod step1;
mod step2;
mod step3;
mod step4;

pub use checkpoint::Checkpoint;
pub use config::{AnyScanConfig, DsuKind};
pub use control::{Completion, PartialResult, RunControl};
pub use driver::{anyscan, AnyScan, IterationRecord, Phase, UnionBreakdown};
pub use error::{AnyScanError, ErrorKind};
pub use state::VertexState;

/// The telemetry facade, re-exported so embedders need not add a separate
/// dependency to trace a run (see [`AnyScan::with_telemetry`]).
pub use anyscan_telemetry as telemetry;
pub use anyscan_telemetry::{BlockSnapshot, Counter, Recorder, Report, Telemetry};
