//! The seven-state vertex machine of Fig. 3, with atomic transitions.
//!
//! States only ever move "up" a partial order (processed never reverts to
//! unprocessed, a core never demotes, a border never becomes a core), so the
//! parallel phases can publish transitions with CAS loops and conflicting
//! writers always converge.

use std::sync::atomic::{AtomicU8, Ordering};

/// Vertex states (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum VertexState {
    /// Never seen.
    Untouched = 0,
    /// `|Γ(p)| < μ` observed: can never be a core; not yet examined.
    UnprocessedNoise = 1,
    /// Examined (range query ran), not a core, no core neighbor known yet.
    ProcessedNoise = 2,
    /// Member of ≥ 1 super-node; own core status unknown.
    UnprocessedBorder = 3,
    /// Confirmed non-core inside a cluster.
    ProcessedBorder = 4,
    /// Known core (e.g. `nei ≥ μ`), neighborhood not yet summarized.
    UnprocessedCore = 5,
    /// Examined core: representative of a super-node.
    ProcessedCore = 6,
}

impl VertexState {
    /// All states, in discriminant order.
    pub const ALL: [VertexState; 7] = [
        VertexState::Untouched,
        VertexState::UnprocessedNoise,
        VertexState::ProcessedNoise,
        VertexState::UnprocessedBorder,
        VertexState::ProcessedBorder,
        VertexState::UnprocessedCore,
        VertexState::ProcessedCore,
    ];

    #[inline]
    fn from_u8(v: u8) -> VertexState {
        Self::ALL[v as usize]
    }

    /// True for the two states that certify a core (Definition 3 already
    /// established).
    #[inline]
    pub fn is_known_core(self) -> bool {
        matches!(
            self,
            VertexState::UnprocessedCore | VertexState::ProcessedCore
        )
    }

    /// True once the vertex can never become a core.
    #[inline]
    pub fn is_known_non_core(self) -> bool {
        matches!(
            self,
            VertexState::UnprocessedNoise
                | VertexState::ProcessedNoise
                | VertexState::ProcessedBorder
        )
    }

    /// Whether the transition `self → next` is allowed by Fig. 3
    /// (self-transitions are allowed as no-ops).
    pub fn can_transition_to(self, next: VertexState) -> bool {
        use VertexState::*;
        if self == next {
            return true;
        }
        matches!(
            (self, next),
            (Untouched, UnprocessedNoise)
                | (Untouched, ProcessedNoise)
                | (Untouched, UnprocessedBorder)
                | (Untouched, UnprocessedCore)
                | (Untouched, ProcessedCore)
                | (UnprocessedNoise, ProcessedBorder)
                | (UnprocessedNoise, ProcessedNoise)
                | (ProcessedNoise, ProcessedBorder)
                | (UnprocessedBorder, UnprocessedCore)
                | (UnprocessedBorder, ProcessedBorder)
                | (UnprocessedBorder, ProcessedCore)
                | (UnprocessedCore, ProcessedCore)
        )
    }
}

/// One atomic state cell per vertex.
#[derive(Debug)]
pub struct StateTable {
    cells: Vec<AtomicU8>,
}

impl StateTable {
    /// All vertices start `Untouched`.
    pub fn new(n: usize) -> Self {
        StateTable {
            cells: (0..n)
                .map(|_| AtomicU8::new(VertexState::Untouched as u8))
                .collect(),
        }
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current state of `v`.
    #[inline]
    pub fn get(&self, v: u32) -> VertexState {
        VertexState::from_u8(self.cells[v as usize].load(Ordering::Acquire))
    }

    /// Publishes `next` for `v` if Fig. 3 allows it from the current state;
    /// retries on contention; returns the state that ended up stored (which
    /// may be a concurrent writer's *later* state). Illegal requested
    /// transitions panic in debug builds and are ignored in release.
    pub fn transition(&self, v: u32, next: VertexState) -> VertexState {
        let cell = &self.cells[v as usize];
        let mut cur = VertexState::from_u8(cell.load(Ordering::Acquire));
        loop {
            if cur == next {
                return cur;
            }
            if !cur.can_transition_to(next) {
                // A concurrent writer may have advanced past `next` (e.g.
                // two threads marking border vs. core); keep the later state.
                debug_assert!(
                    concurrent_overtake_allowed(cur, next),
                    "illegal state transition {cur:?} -> {next:?} for vertex {v}"
                );
                return cur;
            }
            match cell.compare_exchange_weak(
                cur as u8,
                next as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return next,
                Err(actual) => cur = VertexState::from_u8(actual),
            }
        }
    }

    /// Number of vertices currently in `state` (linear scan; diagnostics).
    pub fn count(&self, state: VertexState) -> usize {
        self.cells
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) == state as u8)
            .count()
    }

    /// Per-state vertex counts in discriminant order, in one linear scan.
    /// The entries always sum to [`StateTable::len`]; telemetry snapshots
    /// record this as the anytime progress histogram.
    pub fn histogram(&self) -> [u64; 7] {
        let mut h = [0u64; 7];
        for c in &self.cells {
            h[c.load(Ordering::Relaxed) as usize] += 1;
        }
        h
    }

    /// The raw state bytes in vertex order (checkpoint serialization).
    pub fn raw_bytes(&self) -> Vec<u8> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect()
    }

    /// Rebuilds a table from raw state bytes, rejecting any discriminant
    /// outside Fig. 3's seven states (checkpoint deserialization).
    pub fn from_raw(raw: Vec<u8>) -> Result<StateTable, String> {
        for (v, &b) in raw.iter().enumerate() {
            if b as usize >= VertexState::ALL.len() {
                return Err(format!("vertex {v}: invalid state discriminant {b}"));
            }
        }
        Ok(StateTable {
            cells: raw.into_iter().map(AtomicU8::new).collect(),
        })
    }
}

/// Pairs where a *requested* transition is legitimately superseded by a
/// concurrent stronger one: e.g. thread A marks `q` border while thread B
/// already certified it core.
fn concurrent_overtake_allowed(cur: VertexState, requested: VertexState) -> bool {
    use VertexState::*;
    matches!(
        (cur, requested),
        (UnprocessedCore, UnprocessedBorder)   // border marking lost to core upgrade
            | (ProcessedCore, UnprocessedBorder)
            | (ProcessedCore, UnprocessedCore) // examination finished first
            | (ProcessedBorder, UnprocessedBorder)
            | (ProcessedBorder, ProcessedNoise)
            | (UnprocessedBorder, ProcessedNoise)
            | (UnprocessedCore, ProcessedNoise)
            | (ProcessedCore, ProcessedNoise)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use VertexState::*;

    #[test]
    fn fig3_transitions_allowed() {
        assert!(Untouched.can_transition_to(UnprocessedBorder));
        assert!(Untouched.can_transition_to(ProcessedCore));
        assert!(Untouched.can_transition_to(ProcessedNoise));
        assert!(Untouched.can_transition_to(UnprocessedNoise));
        assert!(UnprocessedNoise.can_transition_to(ProcessedBorder));
        assert!(UnprocessedNoise.can_transition_to(ProcessedNoise));
        assert!(ProcessedNoise.can_transition_to(ProcessedBorder));
        assert!(UnprocessedBorder.can_transition_to(UnprocessedCore));
        assert!(UnprocessedBorder.can_transition_to(ProcessedCore));
        assert!(UnprocessedBorder.can_transition_to(ProcessedBorder));
        assert!(UnprocessedCore.can_transition_to(ProcessedCore));
    }

    #[test]
    fn forbidden_transitions() {
        // A core never demotes; a border never becomes noise; processed
        // never reverts to unprocessed.
        assert!(!ProcessedCore.can_transition_to(ProcessedBorder));
        assert!(!UnprocessedCore.can_transition_to(ProcessedBorder));
        assert!(!ProcessedBorder.can_transition_to(UnprocessedCore));
        assert!(!ProcessedBorder.can_transition_to(ProcessedNoise));
        assert!(!ProcessedBorder.can_transition_to(UnprocessedBorder));
        assert!(!ProcessedNoise.can_transition_to(Untouched));
        assert!(!UnprocessedNoise.can_transition_to(UnprocessedCore));
        assert!(!UnprocessedNoise.can_transition_to(UnprocessedBorder));
    }

    #[test]
    fn known_core_and_non_core_are_disjoint() {
        for s in VertexState::ALL {
            assert!(!(s.is_known_core() && s.is_known_non_core()), "{s:?}");
        }
        assert!(UnprocessedCore.is_known_core());
        assert!(ProcessedCore.is_known_core());
        assert!(UnprocessedNoise.is_known_non_core());
        assert!(ProcessedBorder.is_known_non_core());
        assert!(!Untouched.is_known_core());
        assert!(!Untouched.is_known_non_core());
        assert!(!UnprocessedBorder.is_known_core());
        assert!(!UnprocessedBorder.is_known_non_core());
    }

    #[test]
    fn table_transitions_and_counts() {
        let t = StateTable::new(4);
        assert_eq!(t.count(Untouched), 4);
        assert_eq!(t.transition(0, UnprocessedBorder), UnprocessedBorder);
        assert_eq!(t.transition(0, UnprocessedCore), UnprocessedCore);
        assert_eq!(t.transition(0, ProcessedCore), ProcessedCore);
        assert_eq!(t.get(0), ProcessedCore);
        assert_eq!(t.count(Untouched), 3);
        // No-op self transition.
        assert_eq!(t.transition(0, ProcessedCore), ProcessedCore);
    }

    #[test]
    fn histogram_tracks_counts_and_sums_to_len() {
        let t = StateTable::new(5);
        t.transition(0, UnprocessedBorder);
        t.transition(0, ProcessedCore);
        t.transition(1, UnprocessedNoise);
        t.transition(2, UnprocessedNoise);
        t.transition(2, ProcessedNoise);
        let h = t.histogram();
        assert_eq!(h[Untouched as usize], 2);
        assert_eq!(h[UnprocessedNoise as usize], 1);
        assert_eq!(h[ProcessedNoise as usize], 1);
        assert_eq!(h[ProcessedCore as usize], 1);
        assert_eq!(h.iter().sum::<u64>(), t.len() as u64);
        for s in VertexState::ALL {
            assert_eq!(h[s as usize], t.count(s) as u64, "{s:?}");
        }
    }

    #[test]
    fn concurrent_border_vs_core_marking_converges_to_core() {
        let t = StateTable::new(1);
        t.transition(0, UnprocessedBorder);
        t.transition(0, UnprocessedCore);
        // A straggler thread still trying to mark "border" must observe the
        // stronger state and leave it.
        assert_eq!(t.transition(0, UnprocessedBorder), UnprocessedCore);
        assert_eq!(t.get(0), UnprocessedCore);
    }

    #[test]
    fn parallel_hammering_is_monotone() {
        let t = StateTable::new(64);
        std::thread::scope(|s| {
            for tid in 0..4u32 {
                let t = &t;
                s.spawn(move || {
                    for v in 0..64u32 {
                        t.transition(v, UnprocessedBorder);
                        if (v + tid) % 2 == 0 {
                            t.transition(v, UnprocessedCore);
                        }
                    }
                });
            }
        });
        for v in 0..64u32 {
            let s = t.get(v);
            assert!(
                s == UnprocessedBorder || s == UnprocessedCore,
                "vertex {v} ended in {s:?}"
            );
        }
    }
}
