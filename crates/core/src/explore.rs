//! Interactive parameter exploration.
//!
//! Choosing (ε, μ) is SCAN's known pain point (the paper cites SCOT and
//! gSkeletonClu as dedicated solutions). This module makes the exploration
//! cheap: every edge's structural similarity is evaluated **once** (in
//! parallel), after which clustering any point of an (ε, μ) grid costs only
//! a union-find sweep over the cached similarities — no further merge-joins.
//!
//! ```
//! use anyscan::explore::EpsilonExplorer;
//! use anyscan_graph::GraphBuilder;
//!
//! // Two triangles joined by a bridge edge (2-3).
//! let g = GraphBuilder::from_unweighted_edges(
//!     6,
//!     vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
//! ).unwrap();
//! let explorer = EpsilonExplorer::new(&g, 1);
//! let sweep = explorer.sweep(&[0.2, 0.7], 3);
//! assert_eq!(sweep[0].clusters, 1);  // low ε: the bridge merges everything
//! assert_eq!(sweep[1].clusters, 2);  // high ε: the two triangles
//! ```

use anyscan_dsu::DsuSeq;
use anyscan_graph::{CsrGraph, VertexId};
use anyscan_parallel::parallel_map_adaptive;
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::{Clustering, Role, ScanParams, NOISE};
use anyscan_telemetry::Telemetry;

/// Summary of the clustering at one (ε, μ) grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    pub epsilon: f64,
    pub mu: usize,
    pub clusters: usize,
    pub cores: usize,
    pub borders: usize,
    pub noise: usize,
    /// Size of the largest cluster (0 if none).
    pub largest_cluster: usize,
}

/// Precomputed per-edge similarities enabling O(|E| α(|E|)) clustering at
/// any parameter point.
#[derive(Debug)]
pub struct EpsilonExplorer<'g> {
    graph: &'g CsrGraph,
    /// One record per undirected edge: (u, v, σ(u,v)).
    sigmas: Vec<(VertexId, VertexId, f64)>,
}

impl<'g> EpsilonExplorer<'g> {
    /// Evaluates σ for every edge with `threads` workers.
    pub fn new(graph: &'g CsrGraph, threads: usize) -> Self {
        let n = graph.num_vertices();
        let per_vertex: Vec<Vec<(VertexId, VertexId, f64)>> =
            parallel_map_adaptive(threads, n, |u| {
                let u = u as VertexId;
                graph
                    .neighbor_ids(u)
                    .iter()
                    .filter(|&&v| v > u)
                    .map(|&v| (u, v, sigma_raw(graph, u, v)))
                    .collect()
            });
        EpsilonExplorer {
            graph,
            sigmas: per_vertex.into_iter().flatten().collect(),
        }
    }

    /// [`EpsilonExplorer::new`] with the build recorded as an `"explore"`
    /// span on `telemetry` (free when the handle is disabled).
    pub fn new_traced(graph: &'g CsrGraph, threads: usize, telemetry: &Telemetry) -> Self {
        let _span = telemetry.span("explore");
        Self::new(graph, threads)
    }

    /// Number of cached edge similarities.
    pub fn num_edges(&self) -> usize {
        self.sigmas.len()
    }

    /// The graph being explored.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Full clustering at one parameter point (SCAN-equivalent by
    /// construction: cores from similar-neighbor counts, clusters from
    /// core–core similar edges, borders attached to an adjacent core).
    pub fn clustering_at(&self, params: ScanParams) -> Clustering {
        let n = self.graph.num_vertices();
        let eps = params.epsilon;
        // Similar-neighbor counts (self included, as everywhere else).
        let mut similar = vec![1u32; n];
        for &(u, v, s) in &self.sigmas {
            if s >= eps {
                similar[u as usize] += 1;
                similar[v as usize] += 1;
            }
        }
        let is_core = |v: VertexId| similar[v as usize] as usize >= params.mu;

        let mut dsu = DsuSeq::new(n);
        for &(u, v, s) in &self.sigmas {
            if s >= eps && is_core(u) && is_core(v) {
                dsu.union(u, v);
            }
        }
        let mut labels = vec![NOISE; n];
        let mut roles = vec![Role::Outlier; n];
        for v in 0..n as VertexId {
            if is_core(v) {
                labels[v as usize] = dsu.find(v);
                roles[v as usize] = Role::Core;
            }
        }
        // Borders: first similar core neighbor wins (same tie-break rule as
        // the main algorithms).
        for &(u, v, s) in &self.sigmas {
            if s < eps {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                if is_core(a) && !is_core(b) && labels[b as usize] == NOISE {
                    labels[b as usize] = labels[a as usize];
                    roles[b as usize] = Role::Border;
                }
            }
        }
        let mut clustering = Clustering { labels, roles };
        clustering.classify_noise(self.graph);
        clustering
    }

    /// Sweeps an ε grid at fixed μ, returning one summary per point.
    pub fn sweep(&self, epsilons: &[f64], mu: usize) -> Vec<SweepPoint> {
        epsilons
            .iter()
            .map(|&eps| self.summarize(ScanParams::new(eps, mu)))
            .collect()
    }

    /// Sweeps a μ grid at fixed ε.
    pub fn sweep_mu(&self, epsilon: f64, mus: &[usize]) -> Vec<SweepPoint> {
        mus.iter()
            .map(|&mu| self.summarize(ScanParams::new(epsilon, mu)))
            .collect()
    }

    /// Suggests an ε for the given μ: the midpoint of the widest interval
    /// of a uniform `grid_size`-point ε grid on which the cluster count is
    /// stable and non-trivial (≥ 2 clusters). Plateau stability is the
    /// classic heuristic for SCAN parameter setting (cf. SCOT /
    /// gSkeletonClu, which the paper cites as parameter-setting follow-ups).
    /// Returns `None` when no ε yields ≥ 2 clusters.
    pub fn suggest_epsilon(&self, mu: usize, grid_size: usize) -> Option<f64> {
        let grid_size = grid_size.max(2);
        let grid: Vec<f64> = (1..=grid_size)
            .map(|i| i as f64 / (grid_size as f64 + 1.0))
            .collect();
        let counts: Vec<usize> = grid
            .iter()
            .map(|&e| self.summarize(ScanParams::new(e, mu)).clusters)
            .collect();
        let mut best: Option<(usize, usize, usize)> = None; // (len, start, end)
        let mut start = 0;
        for i in 1..=grid.len() {
            let run_breaks = i == grid.len() || counts[i] != counts[start];
            if run_breaks {
                if counts[start] >= 2 {
                    let len = i - start;
                    if best.is_none_or(|(l, _, _)| len > l) {
                        best = Some((len, start, i - 1));
                    }
                }
                start = i;
            }
        }
        best.map(|(_, s, e)| 0.5 * (grid[s] + grid[e]))
    }

    /// Summary of one grid point.
    pub fn summarize(&self, params: ScanParams) -> SweepPoint {
        let c = self.clustering_at(params);
        let rc = c.role_counts();
        let largest = c.cluster_sizes().values().copied().max().unwrap_or(0);
        SweepPoint {
            epsilon: params.epsilon,
            mu: params.mu,
            clusters: c.num_clusters(),
            cores: rc.cores,
            borders: rc.borders,
            noise: rc.noise(),
            largest_cluster: largest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn sweep_finds_the_cluster_structure() {
        let g = two_triangles();
        let ex = EpsilonExplorer::new(&g, 1);
        assert_eq!(ex.num_edges(), 7);
        let pts = ex.sweep(&[0.2, 0.7, 0.99], 3);
        assert_eq!(pts[0].clusters, 1, "low ε merges everything");
        assert_eq!(pts[1].clusters, 2, "the two triangles");
        // At ε ≈ 1 only perfectly-overlapping neighborhoods survive.
        assert!(pts[2].clusters <= 2);
        // Monotonicity: cores can only shrink as ε grows.
        assert!(pts[0].cores >= pts[1].cores && pts[1].cores >= pts[2].cores);
    }

    #[test]
    fn sweep_mu_shrinks_cores() {
        let g = two_triangles();
        let ex = EpsilonExplorer::new(&g, 1);
        let pts = ex.sweep_mu(0.7, &[1, 3, 5]);
        assert!(pts[0].cores >= pts[1].cores && pts[1].cores >= pts[2].cores);
    }

    #[test]
    fn explorer_clustering_matches_full_algorithms() {
        let mut rng = StdRng::seed_from_u64(880);
        let g = erdos_renyi(&mut rng, 200, 1_400, WeightModel::uniform_default());
        for threads in [1usize, 4] {
            let ex = EpsilonExplorer::new(&g, threads);
            for eps in [0.3, 0.5, 0.7] {
                for mu in [2usize, 5] {
                    let params = ScanParams::new(eps, mu);
                    let truth = anyscan_baselines::scan(&g, params).clustering;
                    let fast = ex.clustering_at(params);
                    assert_scan_equivalent(&g, params, &truth, &fast);
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let ex = EpsilonExplorer::new(&g, 2);
        assert_eq!(ex.num_edges(), 0);
        let p = ex.summarize(ScanParams::paper_defaults());
        assert_eq!(p.clusters, 0);
        assert_eq!(p.largest_cluster, 0);
        assert_eq!(ex.suggest_epsilon(3, 10), None);
    }

    #[test]
    fn suggested_epsilon_separates_the_triangles() {
        let g = two_triangles();
        let ex = EpsilonExplorer::new(&g, 1);
        let eps = ex
            .suggest_epsilon(3, 20)
            .expect("a 2-cluster plateau exists");
        // The 2-cluster plateau is the widest; the suggestion must land in
        // it and actually produce the two triangles.
        let p = ex.summarize(ScanParams::new(eps, 3));
        assert_eq!(
            p.clusters, 2,
            "suggested eps {eps} gives {} clusters",
            p.clusters
        );
    }

    #[test]
    fn no_suggestion_on_structureless_graph() {
        // A single edge never makes 2 clusters at mu=3.
        let g = GraphBuilder::from_unweighted_edges(2, vec![(0, 1)]).unwrap();
        let ex = EpsilonExplorer::new(&g, 1);
        assert_eq!(ex.suggest_epsilon(3, 15), None);
    }
}
