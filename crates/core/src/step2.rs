//! Step 2 — Merging strongly-related super-nodes (Fig. 4 lines 26–42).
//!
//! The candidate set S holds every unprocessed-border vertex belonging to at
//! least two super-nodes, processed in β-blocks sorted by super-node count
//! (most-connective first). Each block core-checks its vertices in parallel
//! (phase A) and merges the super-nodes of confirmed cores under Lemma 2
//! (phase B, shared DSU).

use anyscan_dsu::SharedDsu;
use anyscan_graph::VertexId;
use anyscan_parallel::{parallel_for_adaptive, parallel_map_adaptive};
use anyscan_telemetry::{Counter, Recorder};

use crate::driver::AnyScan;
use crate::state::VertexState;

impl AnyScan<'_> {
    pub(crate) fn init_step2(&mut self) {
        let n = self.kernel.graph().num_vertices() as VertexId;
        let mut s: Vec<VertexId> = (0..n)
            .filter(|&v| {
                self.states.get(v) == VertexState::UnprocessedBorder && self.sn.of(v).len() >= 2
            })
            .collect();
        if self.config.skip_step2 {
            s.clear(); // ablation: Step 3 subsumes these merges
        } else if self.config.sort_step2 {
            s.sort_by_key(|&v| std::cmp::Reverse(self.sn.of(v).len()));
        }
        self.work = s;
        self.work_cursor = 0;
        self.set_phase_initialized();
    }

    /// Runs one β-block of strong merging; returns the block length.
    pub(crate) fn step2_block(&mut self) -> usize {
        let start = self.work_cursor;
        let end = (start + self.config.beta).min(self.work.len());
        self.work_cursor = end;
        if start >= end {
            return 0;
        }
        let block: Vec<VertexId> = self.work[start..end].to_vec();
        let threads = self.config.threads;
        let this: &AnyScan<'_> = &*self;
        let dsu = this.dsu_shared.as_ref().expect("shared DSU after step 1");

        // Phase A: prune + early-exit core check; each vertex touches only
        // its own state.
        let block_ref = &block;
        let merges: Vec<bool> = parallel_map_adaptive(threads, block.len(), |i| {
            let p = block_ref[i];
            let sns = this.sn.of(p);
            // Prune: all containing super-nodes already share a cluster —
            // examining p cannot change the result (paper line 32).
            let root0 = dsu.find(sns[0]);
            if sns[1..].iter().all(|&s| dsu.find(s) == root0) {
                this.telemetry.add(Counter::Step2Pruned, 1);
                return false;
            }
            this.decide_core(p)
        });

        // Phase B: Lemma-2 unions for confirmed cores.
        parallel_for_adaptive(threads, block.len(), |range| {
            for i in range {
                if !merges[i] {
                    continue;
                }
                let sns = this.sn.of(block_ref[i]);
                for w in sns.windows(2) {
                    if dsu.find(w[0]) != dsu.find(w[1]) {
                        dsu.union(w[0], w[1]);
                    }
                }
            }
        });
        block.len()
    }

    /// Early-exit core check of an unprocessed-border vertex, exploiting
    /// everything already known:
    /// * `nei(p) ≥ μ` certifies a core with zero similarity work;
    /// * membership in `sn(c)` certifies σ(p, c) ≥ ε, so the representatives
    ///   of p's super-nodes seed the count and are skipped by the scan.
    ///
    /// Publishes the outcome on the state table and returns it. Safe to call
    /// concurrently for the same vertex (verdicts agree; transitions CAS).
    pub(crate) fn decide_core(&self, p: VertexId) -> bool {
        let state = self.states.get(p);
        if state.is_known_core() {
            return true;
        }
        if state.is_known_non_core() {
            return false;
        }
        self.telemetry.add(Counter::CoreChecks, 1);
        let mu = self.config.params.mu;
        let nei = self.nei[p as usize].load(std::sync::atomic::Ordering::Relaxed) as usize;
        let is_core = if nei >= mu {
            true
        } else {
            let mut reps: Vec<VertexId> =
                self.sn.of(p).iter().map(|&s| self.sn.node(s).rep).collect();
            reps.sort_unstable();
            reps.dedup();
            self.kernel
                .core_check_with_skip(p, 1 + reps.len(), |q| reps.binary_search(&q).is_ok())
        };
        self.states.transition(
            p,
            if is_core {
                VertexState::UnprocessedCore
            } else {
                VertexState::ProcessedBorder
            },
        );
        is_core
    }
}
