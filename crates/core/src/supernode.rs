//! Super-nodes: the summarized ε-neighborhoods of examined cores.

use anyscan_graph::VertexId;

/// One super-node: a core's structural neighborhood (Lemma 1 — everything in
/// it belongs to one cluster).
#[derive(Debug, Clone)]
pub struct SuperNode {
    /// The examined core this super-node summarizes.
    pub rep: VertexId,
    /// `N^ε_rep`, including `rep` itself. For the singleton super-nodes
    /// created for summarization-less cores before Step 3, this is just
    /// `[rep]`.
    pub members: Vec<VertexId>,
}

/// The super-node list plus the inverse vertex → super-node index.
#[derive(Debug, Default)]
pub struct SuperNodes {
    nodes: Vec<SuperNode>,
    /// `memberships[v]` = ids of the super-nodes containing `v` (`SN_v`).
    memberships: Vec<Vec<u32>>,
}

impl SuperNodes {
    /// Empty registry over `n` vertices.
    pub fn new(n: usize) -> Self {
        SuperNodes {
            nodes: Vec::new(),
            memberships: vec![Vec::new(); n],
        }
    }

    /// Registers a super-node and its memberships; returns its id.
    pub fn insert(&mut self, rep: VertexId, members: Vec<VertexId>) -> u32 {
        debug_assert!(members.contains(&rep), "representative must be a member");
        let id = self.nodes.len() as u32;
        for &m in &members {
            self.memberships[m as usize].push(id);
        }
        self.nodes.push(SuperNode { rep, members });
        id
    }

    /// Number of super-nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no super-node exists yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The super-node with id `id`.
    pub fn node(&self, id: u32) -> &SuperNode {
        &self.nodes[id as usize]
    }

    /// `SN_v`: ids of the super-nodes containing `v`.
    #[inline]
    pub fn of(&self, v: VertexId) -> &[u32] {
        &self.memberships[v as usize]
    }

    /// First super-node of `v`, if any — the handle used for `clu(v)`.
    #[inline]
    pub fn first_of(&self, v: VertexId) -> Option<u32> {
        self.memberships[v as usize].first().copied()
    }

    /// Total membership entries (bounded by Σ|N^ε| ≤ O(|E|)).
    pub fn total_memberships(&self) -> usize {
        self.memberships.iter().map(Vec::len).sum()
    }

    /// Attaches `v` to an existing super-node (Step 4 border adoption).
    pub fn attach(&mut self, v: VertexId, snid: u32) {
        debug_assert!((snid as usize) < self.nodes.len());
        self.memberships[v as usize].push(snid);
    }

    /// Serialization view: the node list and the per-vertex membership
    /// index. Memberships must be captured separately from node member
    /// lists — Step 4's [`attach`](Self::attach) adds membership entries
    /// that never appear in any node's `members`.
    pub(crate) fn parts(&self) -> (&[SuperNode], &[Vec<u32>]) {
        (&self.nodes, &self.memberships)
    }

    /// Rebuilds a registry from checkpointed parts (inverse of
    /// [`parts`](Self::parts)).
    pub(crate) fn from_parts(nodes: Vec<SuperNode>, memberships: Vec<Vec<u32>>) -> Self {
        SuperNodes { nodes, memberships }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_builds_inverse_index() {
        let mut sn = SuperNodes::new(5);
        let a = sn.insert(0, vec![0, 1, 2]);
        let b = sn.insert(3, vec![2, 3, 4]);
        assert_eq!(sn.len(), 2);
        assert_eq!(sn.of(2), &[a, b]);
        assert_eq!(sn.of(0), &[a]);
        assert_eq!(sn.of(4), &[b]);
        assert_eq!(sn.first_of(1), Some(a));
        assert_eq!(sn.first_of(2), Some(a));
        assert_eq!(sn.node(b).rep, 3);
        assert_eq!(sn.total_memberships(), 6);
    }

    #[test]
    fn attach_extends_membership() {
        let mut sn = SuperNodes::new(3);
        let a = sn.insert(0, vec![0, 1]);
        assert_eq!(sn.first_of(2), None);
        sn.attach(2, a);
        assert_eq!(sn.first_of(2), Some(a));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "representative must be a member")]
    fn rep_must_be_member() {
        let mut sn = SuperNodes::new(3);
        let _ = sn.insert(0, vec![1, 2]);
    }
}
