//! Cooperative execution control for the anytime loop.
//!
//! A [`RunControl`] token is checked at every block boundary (the paper's
//! suspension points). When it trips — explicit cancel, SIGINT flag,
//! deadline, or block budget — the driver stops cleanly and hands back the
//! Lemma-1 best-so-far snapshot as a [`PartialResult`] instead of panicking
//! or running on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use anyscan_scan_common::Clustering;

use crate::driver::Phase;

/// How a controlled run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The run reached [`Phase::Done`]; the clustering is exact.
    Complete,
    /// [`RunControl::cancel`] (or the attached interrupt flag) tripped.
    Canceled,
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The block budget was exhausted.
    BudgetExhausted,
    /// The run is merely paused (e.g. a snapshot taken mid-run); stepping
    /// can continue.
    Suspended,
}

impl Completion {
    /// True only for [`Completion::Complete`].
    pub fn is_complete(self) -> bool {
        self == Completion::Complete
    }

    /// Stable lowercase label for human output and traces.
    pub fn label(self) -> &'static str {
        match self {
            Completion::Complete => "complete",
            Completion::Canceled => "canceled",
            Completion::DeadlineExpired => "deadline_expired",
            Completion::BudgetExhausted => "budget_exhausted",
            Completion::Suspended => "suspended",
        }
    }
}

/// The anytime clustering a run hands back when it stops — complete or not.
///
/// Lemma 1 guarantees the snapshot is valid at any block boundary: every
/// labeled vertex belongs to the cluster of one of its super-nodes, and no
/// clustered vertex sits in a noise state.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// Best-so-far clustering (exact iff `completion.is_complete()`).
    pub clustering: Clustering,
    /// Why the run stopped.
    pub completion: Completion,
    /// Phase the run was in when it stopped.
    pub phase: Phase,
    /// Block iterations executed so far (including resumed-from blocks).
    pub blocks: u64,
}

/// Shared cancellation token with optional deadline and block budget.
///
/// Clone-cheap (`Arc` inside); hand one clone to the driver and keep
/// another to [`cancel`](RunControl::cancel) from elsewhere. An external
/// `&'static AtomicBool` (a SIGINT flag) can be attached as an additional
/// cancel source.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    canceled: Arc<AtomicBool>,
    interrupt: Option<&'static AtomicBool>,
    deadline: Option<Instant>,
    max_blocks: Option<u64>,
}

impl RunControl {
    /// A control that never trips on its own.
    pub fn new() -> RunControl {
        RunControl::default()
    }

    /// Trips after `timeout` of wall clock, measured from this call.
    pub fn with_deadline(mut self, timeout: Duration) -> RunControl {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Trips once `max_blocks` block iterations have executed.
    pub fn with_max_blocks(mut self, max_blocks: u64) -> RunControl {
        self.max_blocks = Some(max_blocks);
        self
    }

    /// Attaches an external cancel flag (e.g. set by a SIGINT handler);
    /// reads as [`Completion::Canceled`] when true.
    pub fn with_interrupt_flag(mut self, flag: &'static AtomicBool) -> RunControl {
        self.interrupt = Some(flag);
        self
    }

    /// Requests cancellation; the driver honors it at the next block
    /// boundary. Safe to call from any thread.
    pub fn cancel(&self) {
        self.canceled.store(true, Ordering::Release);
    }

    /// True once [`cancel`](RunControl::cancel) or the interrupt flag fired.
    pub fn is_canceled(&self) -> bool {
        self.canceled.load(Ordering::Acquire)
            || self.interrupt.is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Returns the trip reason, if any, given `blocks_done` executed block
    /// iterations. Checked by the driver before every block.
    pub fn check(&self, blocks_done: u64) -> Option<Completion> {
        if self.is_canceled() {
            return Some(Completion::Canceled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Completion::DeadlineExpired);
            }
        }
        if let Some(max) = self.max_blocks {
            if blocks_done >= max {
                return Some(Completion::BudgetExhausted);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untripped_by_default() {
        let ctl = RunControl::new();
        assert_eq!(ctl.check(0), None);
        assert_eq!(ctl.check(u64::MAX), None);
    }

    #[test]
    fn cancel_trips_from_any_clone() {
        let ctl = RunControl::new();
        let other = ctl.clone();
        other.cancel();
        assert!(ctl.is_canceled());
        assert_eq!(ctl.check(0), Some(Completion::Canceled));
    }

    #[test]
    fn deadline_and_budget_trip() {
        let ctl = RunControl::new().with_deadline(Duration::ZERO);
        assert_eq!(ctl.check(0), Some(Completion::DeadlineExpired));

        let ctl = RunControl::new().with_max_blocks(10);
        assert_eq!(ctl.check(9), None);
        assert_eq!(ctl.check(10), Some(Completion::BudgetExhausted));
    }

    #[test]
    fn interrupt_flag_reads_as_cancel() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let ctl = RunControl::new().with_interrupt_flag(&FLAG);
        assert_eq!(ctl.check(0), None);
        FLAG.store(true, Ordering::Release);
        assert_eq!(ctl.check(0), Some(Completion::Canceled));
        FLAG.store(false, Ordering::Release);
    }
}
