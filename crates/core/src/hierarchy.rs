//! The ε-hierarchy: every SCAN clustering for **all** ε at once.
//!
//! The paper's related work (SCOT, gSkeletonClu [20, 21]) builds
//! structure-connected hierarchies to sidestep ε selection. This module
//! implements that idea on top of our kernel, for a fixed μ:
//!
//! * every vertex `v` has a **core threshold** `ε_core(v)` — the largest ε
//!   at which it is still a core. With closed neighborhoods this is the
//!   μ-th largest similarity among `{1.0} ∪ {σ(v, q) | q ∈ N_v}` (σ(v,v)=1
//!   counts), or 0-like if `|Γ(v)| < μ`;
//! * two cores `u, v` joined by an edge become density-connected once
//!   `ε ≤ min(σ(u,v), ε_core(u), ε_core(v))` — the edge's **merge
//!   threshold**;
//! * processing edges by descending merge threshold through a union-find
//!   yields a dendrogram whose cut at any ε is exactly SCAN's partition of
//!   the core vertices at that ε.
//!
//! One `O(ΣD + |E| log |E|)` build then answers every "what if ε were…"
//! question in `O(|E| α(|V|))`; correctness is cross-checked against the
//! full algorithms in tests.

use anyscan_dsu::DsuSeq;
use anyscan_graph::{CsrGraph, VertexId};
use anyscan_parallel::parallel_map_adaptive;
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::{Clustering, Role, NOISE};
use anyscan_telemetry::Telemetry;

/// One dendrogram merge event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeEvent {
    /// Largest ε at which the merge is active.
    pub epsilon: f64,
    /// The edge that created the connection.
    pub u: VertexId,
    pub v: VertexId,
}

/// The ε-hierarchy for a fixed μ.
#[derive(Debug)]
pub struct EpsilonHierarchy<'g> {
    graph: &'g CsrGraph,
    mu: usize,
    /// `ε_core(v)`: largest ε at which `v` is a core (0.0 when never).
    core_threshold: Vec<f64>,
    /// Per-edge σ, kept for border attachment at query time.
    edge_sigmas: Vec<(VertexId, VertexId, f64)>,
    /// Merge events sorted by descending ε.
    merges: Vec<MergeEvent>,
}

impl<'g> EpsilonHierarchy<'g> {
    /// Builds the hierarchy with `threads` workers (the σ evaluations are
    /// the dominant cost and parallelize perfectly).
    pub fn build(graph: &'g CsrGraph, mu: usize, threads: usize) -> Self {
        assert!(mu >= 1);
        let n = graph.num_vertices();

        // σ for every edge, grouped by the lower endpoint.
        let per_vertex: Vec<Vec<(VertexId, VertexId, f64)>> =
            parallel_map_adaptive(threads, n, |u| {
                let u = u as VertexId;
                graph
                    .neighbor_ids(u)
                    .iter()
                    .filter(|&&v| v > u)
                    .map(|&v| (u, v, sigma_raw(graph, u, v)))
                    .collect()
            });
        let edge_sigmas: Vec<(VertexId, VertexId, f64)> =
            per_vertex.into_iter().flatten().collect();

        // ε_core(v): μ-th largest of {1.0 (self)} ∪ incident σ.
        let mut incident: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &(u, v, s) in &edge_sigmas {
            incident[u as usize].push(s);
            incident[v as usize].push(s);
        }
        let core_threshold: Vec<f64> = incident
            .into_iter()
            .map(|mut sims| {
                sims.push(1.0); // σ(v, v)
                if sims.len() < mu {
                    return 0.0;
                }
                sims.sort_unstable_by(|a, b| b.partial_cmp(a).expect("σ is finite"));
                sims[mu - 1]
            })
            .collect();

        // Merge events: potential connections between adjacent cores.
        let mut merges: Vec<MergeEvent> = edge_sigmas
            .iter()
            .filter(|&&(u, v, _)| {
                core_threshold[u as usize] > 0.0 && core_threshold[v as usize] > 0.0
            })
            .map(|&(u, v, s)| MergeEvent {
                epsilon: s
                    .min(core_threshold[u as usize])
                    .min(core_threshold[v as usize]),
                u,
                v,
            })
            .collect();
        merges.sort_unstable_by(|a, b| b.epsilon.partial_cmp(&a.epsilon).expect("finite ε"));

        EpsilonHierarchy {
            graph,
            mu,
            core_threshold,
            edge_sigmas,
            merges,
        }
    }

    /// [`EpsilonHierarchy::build`] with the build recorded as a
    /// `"hierarchy"` span on `telemetry` (free when the handle is disabled).
    pub fn build_traced(
        graph: &'g CsrGraph,
        mu: usize,
        threads: usize,
        telemetry: &Telemetry,
    ) -> Self {
        let _span = telemetry.span("hierarchy");
        Self::build(graph, mu, threads)
    }

    /// The μ this hierarchy was built for.
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// `ε_core(v)` — the largest ε at which `v` is a core.
    pub fn core_threshold(&self, v: VertexId) -> f64 {
        self.core_threshold[v as usize]
    }

    /// All merge events, by descending ε (the dendrogram).
    pub fn merges(&self) -> &[MergeEvent] {
        &self.merges
    }

    /// The full SCAN clustering at `epsilon` (cores + borders + noise),
    /// equivalent to running any of the workspace algorithms at
    /// `(epsilon, μ)`.
    pub fn clustering_at(&self, epsilon: f64) -> Clustering {
        let n = self.graph.num_vertices();
        let is_core = |v: VertexId| self.core_threshold[v as usize] >= epsilon;
        let mut dsu = DsuSeq::new(n);
        for m in &self.merges {
            if m.epsilon < epsilon {
                break; // sorted descending: nothing below is active
            }
            dsu.union(m.u, m.v);
        }
        let mut labels = vec![NOISE; n];
        let mut roles = vec![Role::Outlier; n];
        for v in 0..n as VertexId {
            if is_core(v) {
                labels[v as usize] = dsu.find(v);
                roles[v as usize] = Role::Core;
            }
        }
        for &(u, v, s) in &self.edge_sigmas {
            if s < epsilon {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                if is_core(a) && !is_core(b) && labels[b as usize] == NOISE {
                    labels[b as usize] = labels[a as usize];
                    roles[b as usize] = Role::Border;
                }
            }
        }
        let mut clustering = Clustering { labels, roles };
        clustering.classify_noise(self.graph);
        clustering
    }

    /// Number of clusters at each of the given ε values (descending sweep
    /// in one union-find pass; ε values may come in any order, the result
    /// aligns with the input).
    pub fn cluster_counts(&self, epsilons: &[f64]) -> Vec<usize> {
        // Process ε descending, replaying merges incrementally.
        let n = self.graph.num_vertices();
        let mut order: Vec<usize> = (0..epsilons.len()).collect();
        order.sort_by(|&a, &b| epsilons[b].partial_cmp(&epsilons[a]).expect("finite ε"));
        let mut out = vec![0usize; epsilons.len()];
        let mut dsu = DsuSeq::new(n);
        let mut next_merge = 0usize;
        for &slot in &order {
            let eps = epsilons[slot];
            while next_merge < self.merges.len() && self.merges[next_merge].epsilon >= eps {
                dsu.union(self.merges[next_merge].u, self.merges[next_merge].v);
                next_merge += 1;
            }
            // Count distinct roots among cores at this ε.
            let mut roots = std::collections::HashSet::new();
            for v in 0..n as VertexId {
                if self.core_threshold[v as usize] >= eps {
                    roots.insert(dsu.find(v));
                }
            }
            out[slot] = roots.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use anyscan_scan_common::ScanParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bridged_triangles() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn core_thresholds_are_sensible() {
        let g = bridged_triangles();
        let h = EpsilonHierarchy::build(&g, 3, 1);
        // Triangle-corner vertices stay cores up to high ε; with μ=3 the
        // threshold is the 3rd largest of {1, σ…} > 0.5 here.
        for v in 0..6u32 {
            assert!(h.core_threshold(v) > 0.5, "v={v}: {}", h.core_threshold(v));
            assert!(h.core_threshold(v) <= 1.0);
        }
        // μ larger than any closed degree ⇒ never a core.
        let h = EpsilonHierarchy::build(&g, 10, 1);
        for v in 0..6u32 {
            assert_eq!(h.core_threshold(v), 0.0);
        }
    }

    #[test]
    fn merges_are_sorted_descending() {
        let g = bridged_triangles();
        let h = EpsilonHierarchy::build(&g, 3, 1);
        for w in h.merges().windows(2) {
            assert!(w[0].epsilon >= w[1].epsilon);
        }
    }

    #[test]
    fn cut_matches_full_algorithms_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(91);
        let g = erdos_renyi(&mut rng, 180, 1_400, WeightModel::uniform_default());
        for mu in [2usize, 5] {
            let h = EpsilonHierarchy::build(&g, mu, 2);
            for eps in [0.25, 0.45, 0.65, 0.85] {
                let params = ScanParams::new(eps, mu);
                let truth = anyscan_baselines::scan(&g, params).clustering;
                let cut = h.clustering_at(eps);
                assert_scan_equivalent(&g, params, &truth, &cut);
            }
        }
    }

    #[test]
    fn cluster_counts_match_individual_cuts() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = erdos_renyi(&mut rng, 120, 900, WeightModel::uniform_default());
        let h = EpsilonHierarchy::build(&g, 4, 1);
        // Deliberately unsorted query order.
        let eps = [0.6, 0.2, 0.8, 0.4];
        let fast = h.cluster_counts(&eps);
        for (i, &e) in eps.iter().enumerate() {
            assert_eq!(fast[i], h.clustering_at(e).num_clusters(), "eps {e}");
        }
    }

    #[test]
    fn cluster_count_evolution_on_known_graph() {
        let g = bridged_triangles();
        let h = EpsilonHierarchy::build(&g, 3, 1);
        let counts = h.cluster_counts(&[0.2, 0.7]);
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = GraphBuilder::new(0).build();
        let h = EpsilonHierarchy::build(&g, 3, 1);
        assert!(h.merges().is_empty());
        assert_eq!(h.clustering_at(0.5).len(), 0);

        let g = GraphBuilder::new(1).build();
        let h = EpsilonHierarchy::build(&g, 1, 1);
        // A lone vertex with μ=1 is a core (its closed neighborhood is {v}).
        assert_eq!(h.core_threshold(0), 1.0);
        assert_eq!(h.clustering_at(0.9).num_clusters(), 1);
    }
}
