//! The anytime driver: phases, block iterations, suspension points.

use std::sync::atomic::AtomicU32;
use std::time::{Duration, Instant};

use anyscan_dsu::{AtomicDsu, DsuSeq, LockedDsu, SharedDsu};
use anyscan_graph::{CsrGraph, VertexId};
use anyscan_parallel::WorkerPool;
use anyscan_scan_common::{Clustering, Kernel, ScanParams, SimStats};
use anyscan_telemetry::{BlockSnapshot, Counter, PoolUtilization, Recorder, Telemetry};

use crate::checkpoint::Checkpoint;
use crate::config::{AnyScanConfig, DsuKind};
use crate::control::{Completion, PartialResult, RunControl};
use crate::error::{AnyScanError, ErrorKind};
use crate::snapshot::build_snapshot;
use crate::state::StateTable;
use crate::supernode::SuperNodes;

/// The phase an anySCAN run is currently in. Each [`AnyScan::step`] performs
/// one block iteration of the current phase; phases advance automatically
/// when their work list drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Step 1: summarization of α-blocks of untouched vertices.
    Summarize,
    /// Step 2: merging strongly-related super-nodes (β-blocks of S).
    MergeStrong,
    /// Step 3: merging weakly-related super-nodes (β-blocks of T).
    MergeWeak,
    /// Step 4: determining border vertices (β-blocks of the noise list).
    Borders,
    /// Optional finishing pass deciding the core/border role of vertices the
    /// pruning never had to examine (cluster labels are already final).
    ResolveRoles,
    /// Finished; [`AnyScan::result`] is exact.
    Done,
}

impl Phase {
    /// Stable lowercase label used for telemetry spans and snapshot phases
    /// (`anyscan_telemetry::validate::KNOWN_PHASES`).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Summarize => "summarize",
            Phase::MergeStrong => "merge_strong",
            Phase::MergeWeak => "merge_weak",
            Phase::Borders => "borders",
            Phase::ResolveRoles => "resolve_roles",
            Phase::Done => "done",
        }
    }
}

/// Timing record of one block iteration — the x-axis of Figs. 5 and 10.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    pub phase: Phase,
    /// Global iteration index (0-based).
    pub index: usize,
    /// Vertices handled in this block.
    pub block_len: usize,
    /// Wall time of this iteration.
    pub elapsed: Duration,
    /// Cumulative wall time since construction.
    pub cumulative: Duration,
}

/// `Union` operations per step (Fig. 12): the paper highlights that most
/// unions happen in the sequential part of Step 1, leaving few inside the
/// parallel critical sections of Steps 2–3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnionBreakdown {
    pub step1: u64,
    pub step2: u64,
    pub step3: u64,
}

impl UnionBreakdown {
    /// Total successful unions.
    pub fn total(&self) -> u64 {
        self.step1 + self.step2 + self.step3
    }
}

/// Shared-DSU implementation selected by [`DsuKind`].
pub(crate) enum SharedDsuImpl {
    Atomic(AtomicDsu),
    Locked(LockedDsu),
}

impl SharedDsuImpl {
    fn from_seq(kind: DsuKind, seq: &DsuSeq) -> Self {
        match kind {
            DsuKind::Atomic => SharedDsuImpl::Atomic(AtomicDsu::from_seq(seq)),
            DsuKind::Locked => {
                // Replicate only the partition; counters restart at zero and
                // Step 1's tally lives in the driver's snapshot.
                let mut fresh = DsuSeq::new(seq.len());
                for x in 0..seq.len() as u32 {
                    let r = seq.find_immutable(x);
                    if r != x {
                        fresh.union(x, r);
                    }
                }
                fresh.reset_counters();
                SharedDsuImpl::Locked(LockedDsu::from_seq(fresh))
            }
        }
    }
}

impl SharedDsu for SharedDsuImpl {
    fn find(&self, x: u32) -> u32 {
        match self {
            SharedDsuImpl::Atomic(d) => d.find(x),
            SharedDsuImpl::Locked(d) => d.find(x),
        }
    }

    fn union(&self, x: u32, y: u32) -> bool {
        match self {
            SharedDsuImpl::Atomic(d) => d.union(x, y),
            SharedDsuImpl::Locked(d) => d.union(x, y),
        }
    }

    fn len(&self) -> usize {
        match self {
            SharedDsuImpl::Atomic(d) => d.len(),
            SharedDsuImpl::Locked(d) => d.len(),
        }
    }

    fn counters(&self) -> anyscan_dsu::DsuCounters {
        match self {
            SharedDsuImpl::Atomic(d) => d.counters(),
            SharedDsuImpl::Locked(d) => d.counters(),
        }
    }
}

/// An in-progress (or finished) anySCAN run.
///
/// ```
/// use anyscan::{AnyScan, AnyScanConfig, Phase};
/// use anyscan_graph::GraphBuilder;
/// use anyscan_scan_common::ScanParams;
///
/// let g = GraphBuilder::from_unweighted_edges(
///     6,
///     vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
/// ).unwrap();
/// let mut algo = AnyScan::new(&g, AnyScanConfig::new(ScanParams::new(0.6, 3)));
/// // Drive it interactively: one block at a time, snapshotting in between.
/// while algo.phase() != Phase::Done {
///     let _progress = algo.step();
///     let _approx = algo.snapshot(); // best-so-far clustering
/// }
/// assert_eq!(algo.result().num_clusters(), 2);
/// ```
pub struct AnyScan<'g> {
    pub(crate) config: AnyScanConfig,
    pub(crate) kernel: Kernel<'g>,
    pub(crate) states: StateTable,
    /// `nei(q)` of the paper: confirmed ε-neighbors including q itself.
    pub(crate) nei: Vec<AtomicU32>,
    pub(crate) sn: SuperNodes,
    /// DSU during Step 1 (grown as super-nodes appear, sequential tail).
    pub(crate) dsu_seq: Option<DsuSeq>,
    /// DSU from Step 2 on (fixed element set, shared across threads).
    pub(crate) dsu_shared: Option<SharedDsuImpl>,
    /// Processed-noise vertices and their stored ε-neighborhoods (Step 1's
    /// list L, consumed by Step 4).
    pub(crate) noise_list: Vec<(VertexId, Vec<VertexId>)>,
    /// Shuffled vertex draw order for Step 1 and the cursor into it.
    pub(crate) draw_order: Vec<VertexId>,
    pub(crate) draw_cursor: usize,
    /// Work list of the current phase (S, T, Step-4 items, role backlog).
    pub(crate) work: Vec<VertexId>,
    /// Step 4 only: per-work-item index into `noise_list` (None = the vertex
    /// is unprocessed-noise and has no stored ε-neighborhood).
    pub(crate) work_aux: Vec<Option<usize>>,
    pub(crate) work_cursor: usize,
    pub(crate) phase: Phase,
    pub(crate) phase_initialized: bool,
    iterations: Vec<IterationRecord>,
    /// Block iterations executed before this driver instance was created —
    /// nonzero only on a checkpoint-resumed run, so iteration indices (and
    /// telemetry snapshot indices) stay globally monotone across resumes.
    pub(crate) iteration_base: usize,
    pub(crate) cumulative: Duration,
    pub(crate) union_marks: UnionBreakdown,
    /// Shared-DSU union count at the moment of conversion (the AtomicDsu
    /// carries Step 1's tally over; deltas are measured from here).
    pub(crate) shared_union_base: u64,
    /// End-of-run telemetry aggregates published already (they are additive
    /// counter bumps, so they must fire at most once per driver instance).
    telemetry_published: bool,
    /// Telemetry handle (disabled by default; see
    /// [`AnyScan::with_telemetry`]). The hot-path hooks in steps 1–4 go
    /// through this — one `Option` branch each when disabled.
    pub(crate) telemetry: Telemetry,
    /// Global-pool utilization at the moment telemetry was attached; the
    /// published pool section is the delta from here, scoping the
    /// process-wide counters to this run.
    pool_base: PoolUtilization,
}

impl<'g> AnyScan<'g> {
    /// Prepares a run over `g`; no similarity work happens yet.
    pub fn new(g: &'g CsrGraph, config: AnyScanConfig) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = g.num_vertices();
        let mut kernel = Kernel::with_optimizations(g, config.params, config.optimizations)
            .with_edge_cache(config.edge_cache);
        if config.hub_bitmaps {
            kernel = kernel.with_hub_bitmaps_params(config.hub_max_hubs, config.hub_min_degree);
        }
        // MinHash signatures are seeded from the run seed and built on the
        // worker pool; a resumed run reconstructs the identical sketches
        // from the checkpointed config.
        kernel = kernel.with_sketch_params(
            config.sketch,
            config.sketch_rows,
            config.sketch_bits,
            config.seed,
            config.threads,
        );
        let mut draw_order: Vec<VertexId> = (0..n as VertexId).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        draw_order.shuffle(&mut rng);
        AnyScan {
            config,
            kernel,
            states: StateTable::new(n),
            nei: (0..n).map(|_| AtomicU32::new(1)).collect(),
            sn: SuperNodes::new(n),
            dsu_seq: Some(DsuSeq::new(0)),
            dsu_shared: None,
            noise_list: Vec::new(),
            draw_order,
            draw_cursor: 0,
            work: Vec::new(),
            work_aux: Vec::new(),
            work_cursor: 0,
            phase: Phase::Summarize,
            phase_initialized: false,
            iterations: Vec::new(),
            iteration_base: 0,
            cumulative: Duration::ZERO,
            union_marks: UnionBreakdown::default(),
            shared_union_base: 0,
            telemetry_published: false,
            telemetry: Telemetry::disabled(),
            pool_base: PoolUtilization::default(),
        }
    }

    /// Attaches a telemetry handle: spans per phase, one
    /// [`BlockSnapshot`] per block iteration, kernel/pruning counters and
    /// the pool-utilization delta of this run. Keep a clone of the handle
    /// to retrieve the [`anyscan_telemetry::Report`] afterwards.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        if telemetry.is_enabled() {
            self.pool_base = WorkerPool::global().utilization();
        }
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`AnyScan::with_telemetry`] was used).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The graph being clustered.
    pub fn graph(&self) -> &'g CsrGraph {
        self.kernel.graph()
    }

    /// The run's configuration.
    pub fn config(&self) -> &AnyScanConfig {
        &self.config
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Similarity-evaluation counters so far (Fig. 7's left panel).
    pub fn stats(&self) -> SimStats {
        self.kernel.stats()
    }

    /// `Union` counts per step so far (Fig. 12).
    pub fn union_breakdown(&self) -> UnionBreakdown {
        let mut b = self.union_marks;
        if let Some(shared) = &self.dsu_shared {
            let since_step1 = shared.counters().unions - self.shared_union_base;
            match self.phase {
                Phase::MergeStrong => b.step2 = since_step1,
                Phase::MergeWeak | Phase::Borders | Phase::ResolveRoles | Phase::Done => {
                    b.step3 = since_step1 - b.step2;
                }
                _ => {}
            }
        }
        b
    }

    /// Timing records of every block iteration executed so far.
    pub fn iterations(&self) -> &[IterationRecord] {
        &self.iterations
    }

    /// Cumulative wall time spent inside [`AnyScan::step`].
    pub fn cumulative_time(&self) -> Duration {
        self.cumulative
    }

    /// Number of super-nodes created so far.
    pub fn num_supernodes(&self) -> usize {
        self.sn.len()
    }

    /// Executes one block iteration of the current phase and returns its
    /// timing record. Calling after `Done` is a cheap no-op record.
    pub fn step(&mut self) -> IterationRecord {
        let entry_phase = self.phase;
        let start = Instant::now();
        let block_len = match self.phase {
            Phase::Summarize => {
                let len = self.step1_block();
                if self.draw_cursor >= self.draw_order.len() && len == 0 {
                    self.finish_step1();
                    self.advance(Phase::MergeStrong);
                }
                len
            }
            Phase::MergeStrong => {
                if !self.phase_initialized {
                    self.init_step2();
                }
                let len = self.step2_block();
                if self.work_cursor >= self.work.len() {
                    self.mark_step2_unions();
                    self.advance(Phase::MergeWeak);
                }
                len
            }
            Phase::MergeWeak => {
                if !self.phase_initialized {
                    self.init_step3();
                }
                let len = self.step3_block();
                if self.work_cursor >= self.work.len() {
                    self.mark_step3_unions();
                    self.advance(Phase::Borders);
                }
                len
            }
            Phase::Borders => {
                if !self.phase_initialized {
                    self.init_step4();
                }
                let len = self.step4_block();
                if self.work_cursor >= self.work.len() {
                    self.advance(Phase::ResolveRoles);
                }
                len
            }
            Phase::ResolveRoles => {
                if !self.phase_initialized {
                    self.init_resolve_roles();
                }
                let len = self.resolve_roles_block();
                if self.work_cursor >= self.work.len() {
                    self.advance(Phase::Done);
                }
                len
            }
            Phase::Done => 0,
        };
        let elapsed = start.elapsed();
        self.cumulative += elapsed;
        let record = IterationRecord {
            phase: self.phase,
            index: self.iteration_base + self.iterations.len(),
            block_len,
            elapsed,
            cumulative: self.cumulative,
        };
        if self.phase != Phase::Done || block_len > 0 {
            self.iterations.push(record);
        }
        if self.telemetry.is_enabled() && entry_phase != Phase::Done {
            let elapsed_ns = elapsed.as_nanos() as u64;
            self.telemetry.record_span(entry_phase.label(), elapsed_ns);
            self.telemetry.record_block(BlockSnapshot {
                index: record.index as u64,
                phase: entry_phase.label(),
                block_len: block_len as u64,
                elapsed_ns,
                cumulative_ns: self.cumulative.as_nanos() as u64,
                states: self.states.histogram(),
                supernodes: self.sn.len() as u64,
                components: self.component_count(),
                unions: self.union_breakdown().total(),
            });
            if self.phase == Phase::Done {
                self.publish_final_telemetry();
            }
        }
        record
    }

    /// Distinct DSU components among the super-nodes created so far (the
    /// current cluster count, before border attachment).
    fn component_count(&self) -> u64 {
        let mut roots: Vec<u32> = (0..self.sn.len() as u32).map(|s| self.sn_root(s)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len() as u64
    }

    /// Publishes the end-of-run aggregates exactly once, on the transition
    /// to [`Phase::Done`] (or when a controlled run stops early): kernel
    /// counters (absorbed from [`Kernel::stats`] at report time instead of
    /// double-counting the hot path), the per-step union totals and this
    /// run's pool-utilization delta.
    fn publish_final_telemetry(&mut self) {
        if self.telemetry_published {
            return;
        }
        self.telemetry_published = true;
        let t = &self.telemetry;
        let s = self.kernel.stats();
        t.add(Counter::SigmaEvals, s.sigma_evals);
        t.add(Counter::Lemma5Filtered, s.lemma5_filtered);
        t.add(Counter::SharedEvals, s.shared_evals);
        t.add(Counter::EdgeCacheHits, s.cache_hits);
        t.add(Counter::EdgeCacheMisses, s.cache_misses);
        t.add(Counter::EarlyAccepts, s.early_accepts);
        t.add(Counter::EarlyRejects, s.early_rejects);
        t.add(Counter::SigmaPathMerge, s.path_merge);
        t.add(Counter::SigmaPathProbe, s.path_probe);
        t.add(Counter::SigmaPathBitmap, s.path_bitmap);
        t.add(Counter::SigmaPathBatched, s.path_batched);
        t.add(Counter::SigmaPathSketch, s.path_sketch);
        t.add(Counter::SketchConfirms, s.sketch_confirms);
        let u = self.union_breakdown();
        t.add(Counter::UnionsStep1, u.step1);
        t.add(Counter::UnionsStep2, u.step2);
        t.add(Counter::UnionsStep3, u.step3);
        t.set_pool(
            WorkerPool::global()
                .utilization()
                .delta_since(&self.pool_base),
        );
    }

    /// Runs to completion and returns the exact result.
    pub fn run(&mut self) -> Clustering {
        while self.phase != Phase::Done {
            self.step();
        }
        self.result()
    }

    /// Block iterations executed so far, including any executed before a
    /// checkpoint this run was resumed from.
    pub fn blocks_executed(&self) -> u64 {
        (self.iteration_base + self.iterations.len()) as u64
    }

    /// Like [`step`](Self::step), but converts a panic inside the block —
    /// a poisoned worker-pool job, an injected `driver::block` fault — into
    /// a typed [`AnyScanError`] instead of unwinding through the caller.
    /// The worker pool survives a captured panic and stays reusable; the
    /// run itself must be abandoned (its block-local invariants may be torn
    /// mid-flight), typically by resuming from the last checkpoint.
    pub fn try_step(&mut self) -> Result<IterationRecord, AnyScanError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        catch_unwind(AssertUnwindSafe(|| {
            anyscan_faults::fire_panic("driver::block");
            self.step()
        }))
        .map_err(|payload| {
            AnyScanError::new(
                ErrorKind::Pool,
                format!(
                    "block iteration panicked: {}",
                    anyscan_parallel::panic_message(payload.as_ref())
                ),
            )
        })
    }

    /// Runs until completion or until `ctl` trips, returning the Lemma-1
    /// best-so-far snapshot either way. Panics inside a block surface as
    /// typed errors ([`try_step`](Self::try_step)).
    pub fn run_controlled(&mut self, ctl: &RunControl) -> Result<PartialResult, AnyScanError> {
        self.run_controlled_with(ctl, 0, |_| Ok(()))
    }

    /// [`run_controlled`](Self::run_controlled) with a periodic checkpoint
    /// hook: `on_checkpoint` runs after every `checkpoint_every` blocks
    /// (0 disables it) while the run is still in flight.
    pub fn run_controlled_with<F>(
        &mut self,
        ctl: &RunControl,
        checkpoint_every: u64,
        mut on_checkpoint: F,
    ) -> Result<PartialResult, AnyScanError>
    where
        F: FnMut(&AnyScan<'g>) -> Result<(), AnyScanError>,
    {
        while self.phase != Phase::Done {
            if let Some(reason) = ctl.check(self.blocks_executed()) {
                self.telemetry.add(Counter::CancelTrips, 1);
                self.publish_final_telemetry_if_enabled();
                return Ok(self.partial_with(reason));
            }
            self.try_step()?;
            if checkpoint_every > 0
                && self.phase != Phase::Done
                && self.blocks_executed().is_multiple_of(checkpoint_every)
            {
                on_checkpoint(self)?;
                self.telemetry.add(Counter::CheckpointsWritten, 1);
            }
        }
        Ok(self.partial_with(Completion::Complete))
    }

    fn publish_final_telemetry_if_enabled(&mut self) {
        if self.telemetry.is_enabled() {
            self.publish_final_telemetry();
        }
    }

    /// The anytime result at this instant: the exact clustering when the
    /// run is [`Phase::Done`], otherwise the Lemma-1 best-so-far snapshot
    /// marked [`Completion::Suspended`].
    pub fn partial(&self) -> PartialResult {
        self.partial_with(if self.phase == Phase::Done {
            Completion::Complete
        } else {
            Completion::Suspended
        })
    }

    fn partial_with(&self, completion: Completion) -> PartialResult {
        PartialResult {
            clustering: build_snapshot(self, self.phase == Phase::Done),
            completion,
            phase: self.phase,
            blocks: self.blocks_executed(),
        }
    }

    /// Captures the full anytime state as a [`Checkpoint`] (serializable,
    /// resumable). Cheap relative to a block: no similarity work.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::capture(self)
    }

    /// Reconstructs a run from a checkpoint over the *same* graph (the
    /// stored fingerprint is verified). `threads` overrides the thread
    /// count — everything else, including (ε, μ) and the draw order's seed,
    /// comes from the checkpoint.
    pub fn resume(
        g: &'g CsrGraph,
        checkpoint: &Checkpoint,
        threads: usize,
    ) -> Result<AnyScan<'g>, AnyScanError> {
        checkpoint.restore(g, threads)
    }

    /// Best-so-far clustering at the current instant (Lemma 1: label every
    /// vertex by the cluster of its super-nodes). Cheap: no similarity work.
    pub fn snapshot(&self) -> Clustering {
        let _span = self.telemetry.span("snapshot");
        build_snapshot(self, false)
    }

    /// The final clustering, with hubs and outliers classified. Panics if
    /// the run has not finished; use [`AnyScan::snapshot`] mid-run.
    pub fn result(&self) -> Clustering {
        assert_eq!(
            self.phase,
            Phase::Done,
            "result() requires a finished run; use snapshot()"
        );
        build_snapshot(self, true)
    }

    fn advance(&mut self, next: Phase) {
        self.phase = next;
        self.phase_initialized = false;
        self.work.clear();
        self.work_aux.clear();
        self.work_cursor = 0;
    }

    pub(crate) fn set_phase_initialized(&mut self) {
        self.phase_initialized = true;
    }

    /// Converts the growing sequential DSU into the fixed shared one at the
    /// end of Step 1 and snapshots the step-1 union count.
    fn finish_step1(&mut self) {
        let seq = self.dsu_seq.take().expect("step 1 DSU present");
        self.union_marks.step1 = seq.counters().unions;
        let shared = SharedDsuImpl::from_seq(self.config.dsu, &seq);
        self.shared_union_base = shared.counters().unions;
        self.dsu_shared = Some(shared);
    }

    fn mark_step2_unions(&mut self) {
        if let Some(shared) = &self.dsu_shared {
            self.union_marks.step2 = shared.counters().unions - self.shared_union_base;
        }
    }

    fn mark_step3_unions(&mut self) {
        if let Some(shared) = &self.dsu_shared {
            self.union_marks.step3 =
                shared.counters().unions - self.shared_union_base - self.union_marks.step2;
        }
    }

    /// Current cluster root of a super-node id, regardless of phase.
    #[inline]
    pub(crate) fn sn_root(&self, snid: u32) -> u32 {
        match (&self.dsu_shared, &self.dsu_seq) {
            (Some(shared), _) => shared.find(snid),
            (None, Some(seq)) => seq.find_immutable(snid),
            _ => unreachable!("one DSU always exists"),
        }
    }

    /// Cluster root of a vertex via its first super-node membership.
    #[inline]
    pub(crate) fn vertex_root(&self, v: VertexId) -> Option<u32> {
        self.sn.first_of(v).map(|snid| self.sn_root(snid))
    }
}

/// Convenience batch API: runs anySCAN to completion with the given
/// parameters and a block size auto-scaled to the graph (see
/// [`AnyScanConfig::with_auto_block_size`]), returning the clustering
/// together with its work counters — the shape the experiment harness
/// consumes.
pub fn anyscan(g: &CsrGraph, params: ScanParams) -> anyscan_output::AnyScanOutput {
    let config = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());
    let mut algo = AnyScan::new(g, config);
    let clustering = algo.run();
    anyscan_output::AnyScanOutput {
        clustering,
        stats: algo.stats(),
        unions: algo.union_breakdown(),
        supernodes: algo.num_supernodes(),
        iterations: algo.iterations().len(),
    }
}

pub mod anyscan_output {
    //! Output bundle of the batch convenience API.

    use anyscan_scan_common::{Clustering, SimStats};

    use super::UnionBreakdown;

    /// Result of a completed batch anySCAN run.
    #[derive(Debug, Clone)]
    pub struct AnyScanOutput {
        pub clustering: Clustering,
        pub stats: SimStats,
        pub unions: UnionBreakdown,
        pub supernodes: usize,
        pub iterations: usize,
    }
}
