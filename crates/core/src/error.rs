//! The workspace's typed error taxonomy.
//!
//! Everything fallible at the public API boundary of a run — IO, corrupt
//! inputs, checkpoint problems, worker-job panics — surfaces as one
//! structured [`AnyScanError`]: a machine-matchable [`ErrorKind`], a
//! human-oriented context string, and the underlying source error when one
//! exists. Process aborts are reserved for actual bugs (debug assertions).

use anyscan_graph::types::GraphError;
use anyscan_parallel::PoolError;

/// Broad classification of an [`AnyScanError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// An operating-system IO failure (open/read/write/fsync/rename).
    Io,
    /// Malformed textual input (carries file context upstream).
    Parse,
    /// Malformed or corrupt binary data (bad magic, failed checksum,
    /// structural invariant violation).
    Corrupt,
    /// A checkpoint cannot be applied (config/graph fingerprint mismatch,
    /// inconsistent state sections).
    Checkpoint,
    /// A worker-pool job panicked; the pool survives, the run does not.
    Pool,
}

impl ErrorKind {
    fn label(self) -> &'static str {
        match self {
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Checkpoint => "checkpoint",
            ErrorKind::Pool => "pool",
        }
    }
}

/// A structured error: kind + context + optional source.
#[derive(Debug)]
pub struct AnyScanError {
    kind: ErrorKind,
    context: String,
    source: Option<Box<dyn std::error::Error + Send + Sync>>,
}

impl AnyScanError {
    /// Builds an error with no underlying source.
    pub fn new(kind: ErrorKind, context: impl Into<String>) -> AnyScanError {
        AnyScanError {
            kind,
            context: context.into(),
            source: None,
        }
    }

    /// Attaches the underlying cause.
    pub fn with_source(
        mut self,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> AnyScanError {
        self.source = Some(Box::new(source));
        self
    }

    /// The error's classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-oriented context line.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Wraps an IO error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> AnyScanError {
        AnyScanError::new(ErrorKind::Io, context).with_source(source)
    }
}

impl std::fmt::Display for AnyScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.context)?;
        if let Some(src) = &self.source {
            write!(f, ": {src}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnyScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|s| s as &(dyn std::error::Error + 'static))
    }
}

impl From<GraphError> for AnyScanError {
    fn from(e: GraphError) -> AnyScanError {
        let kind = match &e {
            GraphError::Io(_) => ErrorKind::Io,
            GraphError::Parse { .. } => ErrorKind::Parse,
            GraphError::Format(_)
            | GraphError::VertexOutOfRange { .. }
            | GraphError::InvalidWeight { .. } => ErrorKind::Corrupt,
        };
        AnyScanError::new(kind, e.to_string())
    }
}

impl From<PoolError> for AnyScanError {
    fn from(e: PoolError) -> AnyScanError {
        AnyScanError::new(ErrorKind::Pool, e.to_string())
    }
}
