//! Step 4 — Determining border vertices (Fig. 4 lines 63–65), plus the
//! optional role-resolution pass.
//!
//! Every vertex still in a noise state is re-examined: if some adjacent core
//! is ε-similar, the vertex is a border of that core's cluster; otherwise it
//! is true noise (split into hubs and outliers at result time). For
//! processed-noise vertices the stored ε-neighborhood from Step 1 already
//! certifies σ ≥ ε, so only the neighbor's core status matters; for
//! unprocessed-noise vertices σ must be evaluated too. Core checks of
//! unprocessed-border neighbors may race redundantly across threads — the
//! paper accepts this ("this case very rarely happens") and the state table
//! converges.

use anyscan_graph::VertexId;
use anyscan_parallel::{parallel_for_adaptive, parallel_map_adaptive};
use anyscan_telemetry::{Counter, Recorder};

use crate::driver::AnyScan;
use crate::state::VertexState;

impl AnyScan<'_> {
    pub(crate) fn init_step4(&mut self) {
        let n = self.kernel.graph().num_vertices() as VertexId;
        let mut work = Vec::new();
        let mut aux = Vec::new();
        for (idx, (v, _)) in self.noise_list.iter().enumerate() {
            if self.states.get(*v) == VertexState::ProcessedNoise {
                work.push(*v);
                aux.push(Some(idx));
            }
        }
        for v in 0..n {
            if self.states.get(v) == VertexState::UnprocessedNoise {
                work.push(v);
                aux.push(None);
            }
        }
        self.work = work;
        self.work_aux = aux;
        self.work_cursor = 0;
        self.set_phase_initialized();
    }

    /// Runs one β-block of border determination; returns the block length.
    pub(crate) fn step4_block(&mut self) -> usize {
        let start = self.work_cursor;
        let end = (start + self.config.beta).min(self.work.len());
        self.work_cursor = end;
        if start >= end {
            return 0;
        }
        let block: Vec<VertexId> = self.work[start..end].to_vec();
        let aux: Vec<Option<usize>> = self.work_aux[start..end].to_vec();
        let threads = self.config.threads;
        let this: &AnyScan<'_> = &*self;
        let g = this.kernel.graph();

        // Phase A: find an adopting core per noise vertex (parallel).
        let block_ref = &block;
        let aux_ref = &aux;
        let adoptions: Vec<Option<u32>> = parallel_map_adaptive(threads, block.len(), |i| {
            let p = block_ref[i];
            match aux_ref[i] {
                Some(noise_idx) => {
                    // Stored N^ε_p: σ(p, q) ≥ ε is already certified.
                    for &q in &this.noise_list[noise_idx].1 {
                        if q != p && this.decide_core(q) {
                            return this.sn.first_of(q);
                        }
                    }
                    None
                }
                None => {
                    // Unprocessed noise: similarity unknown; test cores and
                    // candidate cores among the plain neighbors.
                    for &q in g.neighbor_ids(p) {
                        if q == p {
                            continue;
                        }
                        let qs = this.states.get(q);
                        let could_adopt =
                            qs.is_known_core() || qs == VertexState::UnprocessedBorder;
                        if !could_adopt {
                            continue;
                        }
                        if this.kernel.is_eps_neighbor(p, q) && this.decide_core(q) {
                            return this.sn.first_of(q);
                        }
                    }
                    None
                }
            }
        });

        // Phase B (sequential, cheap): record adoptions.
        let mut adopted = 0u64;
        for (i, snid) in adoptions.into_iter().enumerate() {
            let p = block[i];
            match snid {
                Some(snid) => {
                    self.sn.attach(p, snid);
                    self.states.transition(p, VertexState::ProcessedBorder);
                    adopted += 1;
                }
                None => {
                    // True noise; normalize unprocessed-noise to processed.
                    self.states.transition(p, VertexState::ProcessedNoise);
                }
            }
        }
        if adopted > 0 {
            self.telemetry.add(Counter::BorderAdoptions, adopted);
        }
        block.len()
    }

    pub(crate) fn init_resolve_roles(&mut self) {
        let n = self.kernel.graph().num_vertices() as VertexId;
        self.work = if self.config.resolve_roles {
            (0..n)
                .filter(|&v| self.states.get(v) == VertexState::UnprocessedBorder)
                .collect()
        } else {
            Vec::new()
        };
        self.work_cursor = 0;
        self.set_phase_initialized();
    }

    /// Decides the core/border role of one β-block of pruned vertices.
    pub(crate) fn resolve_roles_block(&mut self) -> usize {
        let start = self.work_cursor;
        let end = (start + self.config.beta).min(self.work.len());
        self.work_cursor = end;
        if start >= end {
            return 0;
        }
        let block: Vec<VertexId> = self.work[start..end].to_vec();
        let this: &AnyScan<'_> = &*self;
        let block_ref = &block;
        parallel_for_adaptive(self.config.threads, block.len(), |range| {
            for i in range {
                let _ = this.decide_core(block_ref[i]);
            }
        });
        block.len()
    }
}
