//! Step 3 — Merging weakly-related super-nodes (Fig. 4 lines 44–61).
//!
//! The candidate set T holds every unprocessed-border, unprocessed-core and
//! processed-core vertex, sorted by degree (hubs first: they connect the
//! most super-nodes, so examining them early maximizes later pruning).
//! Each β-block: phase A prunes vertices whose entire clustered neighborhood
//! already shares their cluster and core-checks the rest; phase B evaluates
//! σ across core–core edges that still straddle clusters and unions on
//! success (Lemma 3).

use anyscan_dsu::SharedDsu;
use anyscan_graph::VertexId;
use anyscan_parallel::{parallel_for_adaptive, parallel_map_adaptive};
use anyscan_telemetry::{Counter, Recorder};

use crate::driver::AnyScan;
use crate::state::VertexState;

impl AnyScan<'_> {
    pub(crate) fn init_step3(&mut self) {
        let n = self.kernel.graph().num_vertices() as VertexId;
        let g = self.kernel.graph();
        let mut t: Vec<VertexId> = (0..n)
            .filter(|&v| {
                matches!(
                    self.states.get(v),
                    VertexState::UnprocessedBorder
                        | VertexState::UnprocessedCore
                        | VertexState::ProcessedCore
                )
            })
            .collect();
        if self.config.sort_step3 {
            t.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        }
        self.work = t;
        self.work_cursor = 0;
        self.set_phase_initialized();
    }

    /// Runs one β-block of weak merging; returns the block length.
    pub(crate) fn step3_block(&mut self) -> usize {
        let start = self.work_cursor;
        let end = (start + self.config.beta).min(self.work.len());
        self.work_cursor = end;
        if start >= end {
            return 0;
        }
        let block: Vec<VertexId> = self.work[start..end].to_vec();
        let threads = self.config.threads;
        let this: &AnyScan<'_> = &*self;
        let g = this.kernel.graph();
        let dsu = this.dsu_shared.as_ref().expect("shared DSU after step 1");

        // Phase A: prune + core check.
        let block_ref = &block;
        let merges: Vec<bool> = parallel_map_adaptive(threads, block.len(), |i| {
            let p = block_ref[i];
            let Some(my_root) = this.vertex_root(p) else {
                // Every T member belongs to ≥ 1 super-node (invariant).
                debug_assert!(false, "step-3 candidate {p} has no super-node");
                return false;
            };
            // Prune: all clustered neighbors already share p's cluster, so
            // no Lemma-3 merge through p is possible (paper line 40; noise
            // neighbors cannot justify a merge and are ignored).
            let mut straddles = false;
            for &q in g.neighbor_ids(p) {
                if q == p {
                    continue;
                }
                if let Some(r) = this.vertex_root(q) {
                    if r != my_root {
                        straddles = true;
                        break;
                    }
                }
            }
            if !straddles {
                this.telemetry.add(Counter::Step3Pruned, 1);
                return false;
            }
            this.decide_core(p)
        });

        // Phase B: σ across straddling core–core edges; union on ≥ ε.
        parallel_for_adaptive(threads, block.len(), |range| {
            for i in range {
                if !merges[i] {
                    continue;
                }
                let p = block_ref[i];
                let sp = this.sn.first_of(p).expect("core has a super-node");
                for &q in g.neighbor_ids(p) {
                    if q == p || !this.states.get(q).is_known_core() {
                        continue;
                    }
                    let sq = this.sn.first_of(q).expect("core has a super-node");
                    let (rp, rq) = (dsu.find(sp), dsu.find(sq));
                    if rp == rq {
                        continue;
                    }
                    if this.kernel.is_eps_neighbor(p, q) {
                        dsu.union(rp, rq);
                    }
                }
            }
        });
        block.len()
    }
}
