//! Step 1 — Summarization (paper §III-A/B, Fig. 4 lines 3–24).
//!
//! Each block iteration draws α untouched vertices, range-queries them in
//! parallel (phase A), marks neighbor states and `nei` counters in parallel
//! with one atomic per update (phase B), and creates super-nodes plus their
//! strong unions sequentially (phase C) — the exact three-way split the
//! paper uses to avoid synchronization.

use std::sync::atomic::Ordering;

use anyscan_graph::VertexId;
use anyscan_parallel::{parallel_for_adaptive, parallel_map_with};
use anyscan_scan_common::BatchScratch;
use anyscan_telemetry::{Counter, Recorder};

use crate::driver::AnyScan;
use crate::state::VertexState;

impl AnyScan<'_> {
    /// Runs one α-block of summarization; returns the number of vertices
    /// examined (0 once the untouched pool is exhausted).
    pub(crate) fn step1_block(&mut self) -> usize {
        let g = self.kernel.graph();
        let mu = self.config.params.mu;
        let threads = self.config.threads;

        // Draw α untouched vertices. The |Γ(p)| < μ shortcut marks
        // unprocessed-noise without a range query (Fig. 3's
        // untouched → unprocessed-noise edge) and does not consume a slot.
        let mut block: Vec<VertexId> = Vec::with_capacity(self.config.alpha);
        let mut shortcut_noise = 0u64;
        while block.len() < self.config.alpha && self.draw_cursor < self.draw_order.len() {
            let v = self.draw_order[self.draw_cursor];
            self.draw_cursor += 1;
            if self.states.get(v) != VertexState::Untouched {
                continue;
            }
            if g.degree(v) < mu {
                self.states.transition(v, VertexState::UnprocessedNoise);
                shortcut_noise += 1;
                continue;
            }
            block.push(v);
        }
        if shortcut_noise > 0 {
            self.telemetry
                .add(Counter::DegreeShortcutNoise, shortcut_noise);
        }
        if block.is_empty() {
            return 0;
        }

        // Phase A: independent range queries; each vertex marks only itself.
        // Each worker reuses one scratch buffer for the range query and the
        // retained copy is allocated at exact size (no growth reallocs).
        // With `batched_step1` on, the source row is additionally stamped
        // once into a per-worker dense scratch and reused across all of the
        // vertex's candidate pairs (source-major evaluation).
        let kernel = &self.kernel;
        let states = &self.states;
        let block_ref = &block;
        let n = g.num_vertices();
        let batched = self.config.batched_step1;
        let buffers: Vec<Vec<VertexId>> = parallel_map_with(
            threads,
            block.len(),
            || (Vec::new(), batched.then(|| BatchScratch::new(n))),
            |(scratch, dense), i| {
                let p = block_ref[i];
                match dense {
                    Some(dense) => kernel.eps_neighborhood_batched(p, dense, scratch),
                    None => kernel.eps_neighborhood_into(p, scratch),
                }
                let next = if scratch.len() >= mu {
                    VertexState::ProcessedCore
                } else {
                    VertexState::ProcessedNoise
                };
                states.transition(p, next);
                scratch.as_slice().to_vec()
            },
        );

        // Phase B: neighbor state marking + atomic nei counting.
        let nei = &self.nei;
        let buffers_ref = &buffers;
        parallel_for_adaptive(threads, block.len(), |range| {
            for i in range {
                let p = block_ref[i];
                let p_core = states.get(p) == VertexState::ProcessedCore;
                for &q in &buffers_ref[i] {
                    if q == p {
                        continue;
                    }
                    let new_nei = nei[q as usize].fetch_add(1, Ordering::Relaxed) + 1;
                    if !p_core {
                        continue;
                    }
                    match states.get(q) {
                        VertexState::Untouched => {
                            states.transition(q, VertexState::UnprocessedBorder);
                        }
                        VertexState::UnprocessedNoise | VertexState::ProcessedNoise => {
                            states.transition(q, VertexState::ProcessedBorder);
                        }
                        _ => {}
                    }
                    // nei ≥ μ certifies a core without any σ evaluation
                    // (Fig. 3: unprocessed-border → unprocessed-core).
                    if new_nei as usize >= mu && states.get(q) == VertexState::UnprocessedBorder {
                        states.transition(q, VertexState::UnprocessedCore);
                    }
                }
            }
        });

        // Phase C (sequential): super-node creation, then the Lemma-2 unions
        // through shared *known-core* members (Fig. 2 lines 12–14).
        let first_new = self.sn.len() as u32;
        for (&p, buf) in block.iter().zip(buffers) {
            match self.states.get(p) {
                VertexState::ProcessedCore => {
                    let snid = self.sn.insert(p, buf);
                    let dsu_id = self.dsu_seq.as_mut().expect("step-1 DSU").push();
                    debug_assert_eq!(snid, dsu_id, "super-node and DSU ids must align");
                }
                VertexState::ProcessedNoise => self.noise_list.push((p, buf)),
                // A same-block core adopted this examined non-core as a
                // border; its neighborhood buffer is no longer needed.
                VertexState::ProcessedBorder => {}
                other => unreachable!("examined vertex {p} in state {other:?}"),
            }
        }
        self.telemetry.add(
            Counter::SupernodesCreated,
            self.sn.len() as u64 - first_new as u64,
        );
        let sn = &self.sn;
        let states = &self.states;
        let dsu = self.dsu_seq.as_mut().expect("step-1 DSU");
        for snid in first_new..sn.len() as u32 {
            for &q in &sn.node(snid).members {
                if !states.get(q).is_known_core() {
                    continue;
                }
                for &other in sn.of(q) {
                    if other != snid {
                        dsu.union(snid, other);
                    }
                }
            }
        }
        block.len()
    }
}
