//! Corrupt-input robustness: any bit flip or truncation of a serialized
//! graph must yield `Err` — never a panic, an abort, or a silently wrong
//! graph (the v2 checksum trailer catches what structural validation
//! might miss).

use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_graph::io::binary::{read_binary, write_binary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn serialized_sample(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(&mut rng, 40, 150, WeightModel::uniform_default());
    let mut buf = Vec::new();
    write_binary(&g, &mut buf).unwrap();
    buf
}

proptest! {
    #[test]
    fn corrupt_bit_flips_are_rejected(seed in 0u64..4, byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = serialized_sample(seed);
        let byte = ((buf.len() - 1) as f64 * byte_frac) as usize;
        buf[byte] ^= 1 << bit;
        prop_assert!(read_binary(buf.as_slice()).is_err(),
            "flip of bit {bit} at byte {byte} accepted");
    }

    #[test]
    fn corrupt_truncations_are_rejected(seed in 0u64..4, cut_frac in 0.0f64..1.0) {
        let buf = serialized_sample(seed);
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(read_binary(&buf[..cut]).is_err(), "cut at {cut} accepted");
    }

    #[test]
    fn corrupt_garbage_is_rejected(raw in proptest::collection::vec(0u8..=255, 0..256)) {
        // Arbitrary bytes essentially never start with a valid header; the
        // point is that the reader must return Err rather than panic.
        let _ = read_binary(raw.as_slice());
    }
}
