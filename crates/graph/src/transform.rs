//! Graph transformations: induced subgraphs and vertex relabelings.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Extracts the subgraph induced by `vertices` (duplicates ignored).
/// Returns the subgraph and the mapping `new id → old id`.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let mut keep: Vec<VertexId> = vertices.to_vec();
    keep.sort_unstable();
    keep.dedup();
    let mut old_to_new = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in keep.iter().enumerate() {
        old_to_new[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(keep.len());
    for &old in &keep {
        let new_u = old_to_new[old as usize];
        for (q, w) in g.neighbors(old) {
            if q <= old {
                continue; // each edge once; skips the self-loop too
            }
            let new_v = old_to_new[q as usize];
            if new_v != u32::MAX {
                b.add_edge(new_u, new_v, w);
            }
        }
    }
    (b.build(), keep)
}

/// Relabels the graph by the given permutation: vertex `v` becomes
/// `perm[v]`. `perm` must be a bijection over `0..n`.
pub fn relabel(g: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    debug_assert!(
        {
            let mut seen = vec![false; n];
            perm.iter().all(|&p| {
                let ok = (p as usize) < n && !seen[p as usize];
                if ok {
                    seen[p as usize] = true;
                }
                ok
            })
        },
        "perm must be a bijection over 0..n"
    );
    let mut b = GraphBuilder::with_capacity(n, g.num_edges() as usize);
    for (u, v, w) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize], w);
    }
    b.build()
}

/// A permutation placing vertices in non-increasing degree order (hubs
/// first). Renumbering by it improves the cache behaviour of the
/// merge-join-heavy SCAN kernels on power-law graphs.
pub fn degree_descending_permutation(g: &CsrGraph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    // order[rank] = old vertex; we need perm[old] = rank.
    let mut perm = vec![0 as VertexId; g.num_vertices()];
    for (rank, &old) in order.iter().enumerate() {
        perm[old as usize] = rank as VertexId;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 0.5),
                (2, 3, 2.0),
                (3, 4, 1.0),
                (4, 5, 0.25),
                (1, 4, 0.75),
            ],
        )
        .unwrap()
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = sample();
        let (sub, map) = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        // Internal edges: (1,2) and (1,4).
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge_weight(0, 1), Some(0.5)); // old (1,2)
        assert_eq!(sub.edge_weight(0, 2), Some(0.75)); // old (1,4)
        assert_eq!(sub.edge_weight(1, 2), None);
        sub.check_invariants().unwrap();
    }

    #[test]
    fn induced_subgraph_deduplicates_input() {
        let g = sample();
        let (sub, map) = induced_subgraph(&g, &[4, 1, 4, 2, 1]);
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn relabel_is_an_isomorphism() {
        let g = sample();
        let perm: Vec<u32> = vec![5, 4, 3, 2, 1, 0];
        let h = relabel(&g, &perm);
        assert_eq!(g.num_edges(), h.num_edges());
        for (u, v, w) in g.edges() {
            assert_eq!(h.edge_weight(perm[u as usize], perm[v as usize]), Some(w));
        }
        // Statistics are permutation-invariant.
        let (sg, sh) = (graph_stats(&g), graph_stats(&h));
        assert_eq!(sg.triangles, sh.triangles);
        assert!(
            (sg.average_clustering_coefficient - sh.average_clustering_coefficient).abs() < 1e-12
        );
    }

    #[test]
    fn degree_permutation_places_hubs_first() {
        let g = sample();
        let perm = degree_descending_permutation(&g);
        let h = relabel(&g, &perm);
        let degs: Vec<usize> = h.vertices().map(|v| h.degree(v)).collect();
        for w in degs.windows(2) {
            assert!(w[0] >= w[1], "degrees must be non-increasing: {degs:?}");
        }
    }

    #[test]
    fn identity_relabel_is_noop() {
        let g = sample();
        let perm: Vec<u32> = g.vertices().collect();
        assert_eq!(relabel(&g, &perm), g);
    }

    #[test]
    fn empty_selection() {
        let g = sample();
        let (sub, map) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }
}
