//! Breadth-first traversal and connected components.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Assigns a component id to every vertex; ids are dense, in order of the
/// lowest vertex id in each component. Returns `(component_of, count)`.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    const UNSEEN: u32 = u32::MAX;
    let n = g.num_vertices();
    let mut comp = vec![UNSEEN; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in g.vertices() {
        if comp[s as usize] != UNSEEN {
            continue;
        }
        comp[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbor_ids(u) {
                if comp[v as usize] == UNSEEN {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// BFS distances (in hops) from `source`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbor_ids(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Size of the largest connected component.
pub fn largest_component_size(g: &CsrGraph) -> usize {
    let (comp, k) = connected_components(g);
    let mut sizes = vec![0usize; k];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn components_of_disjoint_paths() {
        let g = GraphBuilder::from_unweighted_edges(6, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = GraphBuilder::from_unweighted_edges(5, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).build();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 1);
        assert_eq!(comp, vec![0]);
        assert_eq!(bfs_distances(&g, 0), vec![0]);
    }
}
