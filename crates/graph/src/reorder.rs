//! Cache-locality vertex reorderings with label round-tripping.
//!
//! The σ merge-join walks CSR adjacency in whatever vertex order the input
//! file happened to use; on real graphs that order has no locality and every
//! neighbor-list access is a potential cache miss. Relabeling the graph so
//! that structurally close vertices get nearby ids turns those scattered
//! reads into mostly-sequential ones:
//!
//! * [`ReorderMode::Degree`] — non-increasing degree (hubs first). Hub rows,
//!   touched by most σ evaluations on power-law graphs, land together at the
//!   front of the arc arrays and stay resident in cache.
//! * [`ReorderMode::Bfs`] — Cuthill–McKee-style breadth-first order (each
//!   component from a minimum-degree start, neighbors visited in ascending
//!   degree). Reduces CSR bandwidth, so the two rows of a merge-join overlap
//!   in memory.
//!
//! Every reordering is captured as a [`VertexPermutation`] that round-trips
//! per-vertex data between the two id spaces, so user-facing output,
//! checkpoints and index files can keep reporting **original** vertex ids
//! while the clustering machinery runs on the relabeled graph. Both
//! orderings are pure functions of the graph (ties broken by ascending old
//! id), which is what lets checkpoint/index files store just the
//! [`ReorderMode`] byte and reconstruct the exact permutation on reload.

use std::str::FromStr;

use crate::csr::CsrGraph;
use crate::transform::{degree_descending_permutation, relabel};
use crate::types::VertexId;

/// Which vertex reordering to apply before clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderMode {
    /// Keep the input order (identity permutation).
    #[default]
    None,
    /// Non-increasing degree, ties by ascending old id.
    Degree,
    /// Cuthill–McKee-style BFS order (see module docs).
    Bfs,
}

impl ReorderMode {
    /// All modes, for sweeps and CLI help.
    pub const ALL: [ReorderMode; 3] = [ReorderMode::None, ReorderMode::Degree, ReorderMode::Bfs];

    /// Stable name (CLI flag value and JSON field).
    pub fn as_str(self) -> &'static str {
        match self {
            ReorderMode::None => "none",
            ReorderMode::Degree => "degree",
            ReorderMode::Bfs => "bfs",
        }
    }

    /// Stable one-byte code used by the checkpoint and index formats.
    pub fn code(self) -> u8 {
        match self {
            ReorderMode::None => 0,
            ReorderMode::Degree => 1,
            ReorderMode::Bfs => 2,
        }
    }

    /// Inverse of [`ReorderMode::code`]; `None` for unknown bytes (a newer
    /// writer), letting readers fail with a message instead of a panic.
    pub fn from_code(code: u8) -> Option<ReorderMode> {
        match code {
            0 => Some(ReorderMode::None),
            1 => Some(ReorderMode::Degree),
            2 => Some(ReorderMode::Bfs),
            _ => None,
        }
    }
}

impl FromStr for ReorderMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(ReorderMode::None),
            "degree" => Ok(ReorderMode::Degree),
            "bfs" => Ok(ReorderMode::Bfs),
            other => Err(format!(
                "unknown reorder mode '{other}' (expected none|degree|bfs)"
            )),
        }
    }
}

impl std::fmt::Display for ReorderMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A bijection between original ("old") and relabeled ("new") vertex ids,
/// stored in both directions so either lookup is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPermutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<VertexId>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<VertexId>,
}

impl VertexPermutation {
    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        VertexPermutation {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Builds a permutation from the `old → new` direction.
    ///
    /// # Panics
    /// If `new_of_old` is not a bijection over `0..len`.
    pub fn from_new_of_old(new_of_old: Vec<VertexId>) -> Self {
        let n = new_of_old.len();
        let mut old_of_new = vec![VertexId::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(
                (new as usize) < n && old_of_new[new as usize] == VertexId::MAX,
                "new_of_old is not a bijection over 0..{n}"
            );
            old_of_new[new as usize] = old as VertexId;
        }
        VertexPermutation {
            new_of_old,
            old_of_new,
        }
    }

    /// Number of vertices the permutation covers.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// True if the permutation maps every vertex to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(old, &new)| old as VertexId == new)
    }

    /// The relabeled id of original vertex `old`.
    #[inline]
    pub fn new_of_old(&self, old: VertexId) -> VertexId {
        self.new_of_old[old as usize]
    }

    /// The original id of relabeled vertex `new`.
    #[inline]
    pub fn old_of_new(&self, new: VertexId) -> VertexId {
        self.old_of_new[new as usize]
    }

    /// The raw `old → new` mapping (the shape [`crate::transform::relabel`]
    /// consumes).
    pub fn as_new_of_old(&self) -> &[VertexId] {
        &self.new_of_old
    }

    /// Re-indexes a per-vertex array from new-id space back to original-id
    /// space: `out[old] = xs[new_of_old[old]]`. This is the map applied to
    /// labels/roles before any user-facing output.
    pub fn to_original<T: Clone>(&self, xs_new: &[T]) -> Vec<T> {
        assert_eq!(xs_new.len(), self.len(), "array length mismatch");
        self.new_of_old
            .iter()
            .map(|&new| xs_new[new as usize].clone())
            .collect()
    }

    /// Re-indexes a per-vertex array from original-id space into new-id
    /// space: `out[new] = xs[old_of_new[new]]` (inverse of
    /// [`VertexPermutation::to_original`]).
    pub fn to_reordered<T: Clone>(&self, xs_old: &[T]) -> Vec<T> {
        assert_eq!(xs_old.len(), self.len(), "array length mismatch");
        self.old_of_new
            .iter()
            .map(|&old| xs_old[old as usize].clone())
            .collect()
    }
}

/// Computes the permutation for `mode` without relabeling the graph.
pub fn permutation_for(g: &CsrGraph, mode: ReorderMode) -> VertexPermutation {
    match mode {
        ReorderMode::None => VertexPermutation::identity(g.num_vertices()),
        ReorderMode::Degree => VertexPermutation::from_new_of_old(degree_descending_permutation(g)),
        ReorderMode::Bfs => VertexPermutation::from_new_of_old(bfs_permutation(g)),
    }
}

/// Relabels `g` by `mode` and returns the reordered graph together with the
/// permutation that round-trips vertex ids. `ReorderMode::None` clones the
/// graph unchanged with an identity permutation.
pub fn reorder(g: &CsrGraph, mode: ReorderMode) -> (CsrGraph, VertexPermutation) {
    let perm = permutation_for(g, mode);
    let reordered = if perm.is_identity() {
        g.clone()
    } else {
        relabel(g, perm.as_new_of_old())
    };
    (reordered, perm)
}

/// Cuthill–McKee-style BFS numbering: components in ascending order of their
/// minimum-degree vertex (ties by id), BFS from that vertex, neighbors
/// enqueued in ascending degree (ties by id). Deterministic by construction.
fn bfs_permutation(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut rank_of_old = vec![VertexId::MAX; n];
    let mut next_rank: VertexId = 0;
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<VertexId> = Vec::new();

    // Component starts: ascending (degree, id) over all vertices; vertices
    // already numbered when their turn comes are skipped.
    let mut starts: Vec<VertexId> = g.vertices().collect();
    starts.sort_by_key(|&v| (g.degree(v), v));

    for &start in &starts {
        if rank_of_old[start as usize] != VertexId::MAX {
            continue;
        }
        rank_of_old[start as usize] = next_rank;
        next_rank += 1;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            nbrs.clear();
            nbrs.extend(
                g.neighbor_ids(u)
                    .iter()
                    .copied()
                    .filter(|&q| rank_of_old[q as usize] == VertexId::MAX),
            );
            nbrs.sort_by_key(|&q| (g.degree(q), q));
            for &q in &nbrs {
                rank_of_old[q as usize] = next_rank;
                next_rank += 1;
                queue.push_back(q);
            }
        }
    }
    debug_assert_eq!(next_rank as usize, n);
    rank_of_old
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        // Star on {0..4} centered at 3, plus a separate triangle {5,6,7}.
        GraphBuilder::from_unweighted_edges(
            8,
            vec![(3, 0), (3, 1), (3, 2), (3, 4), (5, 6), (6, 7), (7, 5)],
        )
        .unwrap()
    }

    #[test]
    fn mode_roundtrips_str_and_code() {
        for mode in ReorderMode::ALL {
            assert_eq!(mode.as_str().parse::<ReorderMode>().unwrap(), mode);
            assert_eq!(ReorderMode::from_code(mode.code()), Some(mode));
        }
        assert!("rcm".parse::<ReorderMode>().is_err());
        assert_eq!(ReorderMode::from_code(99), None);
    }

    #[test]
    fn identity_permutation_is_identity() {
        let p = VertexPermutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(
            p.to_original(&[10, 11, 12, 13, 14]),
            vec![10, 11, 12, 13, 14]
        );
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn non_bijection_rejected() {
        let _ = VertexPermutation::from_new_of_old(vec![0, 0, 1]);
    }

    #[test]
    fn to_original_inverts_to_reordered() {
        let g = sample();
        for mode in ReorderMode::ALL {
            let p = permutation_for(&g, mode);
            let xs: Vec<u32> = (100..108).collect();
            assert_eq!(p.to_original(&p.to_reordered(&xs)), xs, "{mode}");
            for old in g.vertices() {
                assert_eq!(p.old_of_new(p.new_of_old(old)), old, "{mode}");
            }
        }
    }

    #[test]
    fn degree_mode_sorts_hubs_first() {
        let g = sample();
        let (g2, p) = reorder(&g, ReorderMode::Degree);
        // New order must be non-increasing in closed degree.
        let degs: Vec<usize> = g2.vertices().map(|v| g2.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degs={degs:?}");
        // The star center (highest degree) becomes vertex 0.
        assert_eq!(p.new_of_old(3), 0);
    }

    #[test]
    fn bfs_mode_numbers_components_contiguously() {
        let g = sample();
        let (_, p) = reorder(&g, ReorderMode::Bfs);
        // Triangle vertices {5,6,7} (degree 3) precede the star (center
        // degree 5, leaves degree 2 — but the star's min-degree leaf starts
        // only after the triangle component is exhausted... or before,
        // depending on (degree, id) of the starts). Whichever starts, each
        // component's new ids must form a contiguous range.
        let tri: Vec<VertexId> = [5u32, 6, 7].iter().map(|&v| p.new_of_old(v)).collect();
        let star: Vec<VertexId> = [0u32, 1, 2, 3, 4]
            .iter()
            .map(|&v| p.new_of_old(v))
            .collect();
        let (tmin, tmax) = (*tri.iter().min().unwrap(), *tri.iter().max().unwrap());
        let (smin, smax) = (*star.iter().min().unwrap(), *star.iter().max().unwrap());
        assert_eq!((tmax - tmin) as usize, tri.len() - 1);
        assert_eq!((smax - smin) as usize, star.len() - 1);
        assert!(tmax < smin || smax < tmin);
    }

    #[test]
    fn reorder_preserves_edges_and_weights() {
        let g = GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 2.0),
                (1, 2, 0.5),
                (2, 3, 1.5),
                (3, 4, 0.25),
                (4, 5, 3.0),
                (5, 0, 1.0),
            ],
        )
        .unwrap();
        for mode in ReorderMode::ALL {
            let (g2, p) = reorder(&g, mode);
            assert_eq!(g2.num_vertices(), g.num_vertices());
            assert_eq!(g2.num_edges(), g.num_edges());
            g2.check_invariants().unwrap();
            for (u, v, w) in g.edges() {
                assert_eq!(
                    g2.edge_weight(p.new_of_old(u), p.new_of_old(v)),
                    Some(w),
                    "{mode}: edge ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn modes_are_deterministic() {
        let g = sample();
        for mode in ReorderMode::ALL {
            assert_eq!(permutation_for(&g, mode), permutation_for(&g, mode));
        }
    }
}
