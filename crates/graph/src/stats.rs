//! Exact graph statistics: the `d̄` and `c` columns of Tables I and II.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Summary statistics of a graph, mirroring the dataset tables of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub num_vertices: usize,
    pub num_edges: u64,
    /// Average open degree `2|E|/|V|` (`d̄`).
    pub average_degree: f64,
    /// Average local clustering coefficient (`c`), Watts–Strogatz style:
    /// mean over vertices of `2·tri(v) / (d(v)·(d(v)-1))`, with degree-<2
    /// vertices contributing 0 (the convention used by SNAP, whose numbers
    /// Table I quotes).
    pub average_clustering_coefficient: f64,
    /// Global clustering coefficient (transitivity): `3·triangles / wedges`.
    pub global_clustering_coefficient: f64,
    /// Total number of triangles in the graph.
    pub triangles: u64,
    pub max_degree: usize,
    pub min_degree: usize,
}

/// Computes all statistics in one pass of exact triangle counting.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let tri = triangles_per_vertex(g);
    let mut total_tri = 0u64;
    let mut sum_local = 0.0f64;
    let mut wedges = 0u64;
    let mut max_degree = 0usize;
    let mut min_degree = usize::MAX;
    for v in g.vertices() {
        let d = g.open_degree(v);
        max_degree = max_degree.max(d);
        min_degree = min_degree.min(d);
        total_tri += tri[v as usize] as u64;
        if d >= 2 {
            let w = (d * (d - 1) / 2) as u64;
            wedges += w;
            sum_local += tri[v as usize] as f64 / w as f64;
        }
    }
    if n == 0 {
        min_degree = 0;
    }
    // Each triangle was counted once per corner.
    let triangles = total_tri / 3;
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        average_degree: g.average_degree(),
        average_clustering_coefficient: if n == 0 { 0.0 } else { sum_local / n as f64 },
        global_clustering_coefficient: if wedges == 0 {
            0.0
        } else {
            total_tri as f64 / wedges as f64
        },
        triangles,
        max_degree,
        min_degree,
    }
}

/// Exact per-vertex triangle counts via sorted adjacency intersection.
///
/// For every edge `(u,v)` with `u < v` the intersection
/// `|N(u) ∩ N(v)|` (self-loops excluded) counts triangles through that edge;
/// accumulating it on `u`, `v` *and* each common neighbor yields per-corner
/// counts in one sweep. Runs in `O(Σ_(u,v)∈E min(d_u, d_v))`.
pub fn triangles_per_vertex(g: &CsrGraph) -> Vec<u32> {
    let mut tri = vec![0u32; g.num_vertices()];
    for u in g.vertices() {
        let nu = g.neighbor_ids(u);
        for &v in nu {
            if v <= u {
                continue;
            }
            let nv = g.neighbor_ids(v);
            // Merge-intersect, only counting common neighbors w > v so each
            // triangle {u<v<w} is visited exactly once.
            let (mut i, mut j) = (0, 0);
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                if a == b {
                    if a > v {
                        tri[u as usize] += 1;
                        tri[v as usize] += 1;
                        tri[a as usize] += 1;
                    }
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    tri
}

/// Degree histogram: `hist[d]` = number of vertices with open degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.vertices() {
        let d = g.open_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Local clustering coefficient of a single vertex.
pub fn local_clustering_coefficient(g: &CsrGraph, v: VertexId) -> f64 {
    let d = g.open_degree(v);
    if d < 2 {
        return 0.0;
    }
    let mut t = 0u64;
    let nv = g.neighbor_ids(v);
    for &u in nv {
        if u == v {
            continue;
        }
        let nu = g.neighbor_ids(u);
        let (mut i, mut j) = (0, 0);
        while i < nv.len() && j < nu.len() {
            let (a, b) = (nv[i], nu[j]);
            if a == b {
                if a != v && a != u && a > u {
                    t += 1;
                }
                i += 1;
                j += 1;
            } else if a < b {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    2.0 * t as f64 / (d * (d - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn k4() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap()
    }

    #[test]
    fn complete_graph_statistics() {
        let s = graph_stats(&k4());
        assert_eq!(s.triangles, 4);
        assert!((s.average_clustering_coefficient - 1.0).abs() < 1e-12);
        assert!((s.global_clustering_coefficient - 1.0).abs() < 1e-12);
        assert!((s.average_degree - 3.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.min_degree, 3);
    }

    #[test]
    fn triangle_free_graph() {
        // 4-cycle: no triangles, clustering 0.
        let g =
            GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.average_clustering_coefficient, 0.0);
        assert_eq!(s.global_clustering_coefficient, 0.0);
    }

    #[test]
    fn per_vertex_triangles() {
        // Triangle 0-1-2 plus pendant 3 on vertex 0.
        let g =
            GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        assert_eq!(triangles_per_vertex(&g), vec![1, 1, 1, 0]);
        let s = graph_stats(&g);
        assert_eq!(s.triangles, 1);
        // local c: v0 has d=3, 1 triangle => 1/3; v1,v2 have d=2 => 1.0; v3 => 0.
        let expected = (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0;
        assert!((s.average_clustering_coefficient - expected).abs() < 1e-12);
        assert!((local_clustering_coefficient(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((local_clustering_coefficient(&g, 1) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering_coefficient(&g, 3), 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g =
            GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 1, 2, 1]); // one deg-1, two deg-2, one deg-3
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.min_degree, 0);
    }

    #[test]
    fn stats_match_on_two_triangles_sharing_a_vertex() {
        // Bowtie: triangles {0,1,2} and {2,3,4}.
        let g = GraphBuilder::from_unweighted_edges(
            5,
            vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
        )
        .unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.triangles, 2);
        assert_eq!(triangles_per_vertex(&g), vec![1, 1, 2, 1, 1]);
        // global: 3*2 / wedges; wedges = C(2,2)*4 + C(4,2) = 4 + 6 = 10
        assert!((s.global_clustering_coefficient - 6.0 / 10.0).abs() < 1e-12);
    }
}
