//! Fundamental identifier and error types shared across the workspace.

use std::fmt;

/// Vertex identifier.
///
/// Graphs in this workspace are laptop-scale reproductions of the paper's
/// multi-million-vertex datasets, so 32 bits are ample; the narrower id also
/// halves the memory traffic of the adjacency arrays, which dominate the
/// working set of every SCAN-family algorithm.
pub type VertexId = u32;

/// Index into the flat CSR edge arrays (an *arc*: each undirected edge is
/// stored once per endpoint).
pub type EdgeId = usize;

/// Edge weight. The paper's weighted structural similarity (Definition 1)
/// is evaluated in `f64` to keep the ε comparisons stable.
pub type Weight = f64;

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange { vertex: u64, num_vertices: u64 },
    /// An edge weight was non-finite or not strictly positive.
    InvalidWeight {
        u: VertexId,
        v: VertexId,
        weight: Weight,
    },
    /// A text input line could not be parsed.
    Parse { line: u64, message: String },
    /// Underlying I/O failure.
    Io(String),
    /// A binary file had a bad magic number or truncated payload.
    Format(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex id {vertex} out of range (graph has {num_vertices} vertices)"
                )
            }
            GraphError::InvalidWeight { u, v, weight } => {
                write!(
                    f,
                    "edge ({u},{v}) has invalid weight {weight}; weights must be finite and > 0"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));

        let e = GraphError::InvalidWeight {
            u: 1,
            v: 2,
            weight: -0.5,
        };
        assert!(e.to_string().contains("(1,2)"));

        let e = GraphError::Parse {
            line: 17,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 17"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
