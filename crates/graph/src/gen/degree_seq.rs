//! Truncated power-law sampling for degree and community-size sequences.

use rand::Rng;

/// Samples from a discrete power law `P(k) ∝ k^(-exponent)` truncated to
/// `[min, max]`, via inverse-transform sampling on the continuous relaxation
/// (the standard approach used by the LFR reference implementation).
#[derive(Debug, Clone, Copy)]
pub struct PowerLaw {
    min: f64,
    max: f64,
    exponent: f64,
}

impl PowerLaw {
    /// Creates a sampler; requires `1 <= min <= max` and `exponent > 1`.
    pub fn new(min: u32, max: u32, exponent: f64) -> Self {
        assert!(
            min >= 1 && min <= max,
            "need 1 <= min <= max, got [{min},{max}]"
        );
        assert!(
            exponent > 1.0,
            "power-law exponent must exceed 1, got {exponent}"
        );
        PowerLaw {
            min: min as f64,
            max: max as f64 + 1.0,
            exponent,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let a = 1.0 - self.exponent;
        let lo = self.min.powf(a);
        let hi = self.max.powf(a);
        let u: f64 = rng.gen();
        let x = (lo + u * (hi - lo)).powf(1.0 / a);
        // Truncate to the integer lattice; clamp guards the max+1 open bound.
        (x.floor() as u32).clamp(self.min as u32, self.max as u32 - 1)
    }

    /// Expected value of the (continuous relaxation of the) distribution.
    pub fn mean(&self) -> f64 {
        let a = 1.0 - self.exponent;
        let b = 2.0 - self.exponent;
        if a.abs() < 1e-12 || b.abs() < 1e-12 {
            // Degenerate exponents (1 or 2): fall back to numeric integration.
            let steps = 10_000;
            let (mut z, mut m) = (0.0, 0.0);
            for i in 0..steps {
                let x = self.min + (self.max - self.min) * (i as f64 + 0.5) / steps as f64;
                let p = x.powf(-self.exponent);
                z += p;
                m += p * x;
            }
            return m / z;
        }
        let z = (self.max.powf(a) - self.min.powf(a)) / a;
        let m = (self.max.powf(b) - self.min.powf(b)) / b;
        m / z
    }
}

/// Draws a degree sequence of length `n` with the given exponent and maximum,
/// choosing the minimum degree so the *empirical* mean lands within ~2% of
/// `target_mean` (this is how the LFR reference code hits its `-k` option).
pub fn degree_sequence<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    target_mean: f64,
    exponent: f64,
    max_degree: u32,
) -> Vec<u32> {
    assert!(target_mean >= 1.0 && (target_mean as u32) < max_degree);
    // Binary search over a fractional minimum degree: sample with the floor
    // and ceil and mix to reach the target expectation.
    let (mut lo, mut hi) = (1.0f64, max_degree as f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mixed_mean(mid, max_degree, exponent) < target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let dmin = lo;
    let floor = dmin.floor().max(1.0) as u32;
    let frac = dmin - floor as f64;
    let low = PowerLaw::new(floor, max_degree, exponent);
    let high = PowerLaw::new((floor + 1).min(max_degree), max_degree, exponent);
    let mut seq: Vec<u32> = (0..n)
        .map(|_| {
            if rng.gen::<f64>() < frac {
                high.sample(rng)
            } else {
                low.sample(rng)
            }
        })
        .collect();
    // Nudge the realized mean onto the target by resampling the tails.
    let target_total = (target_mean * n as f64).round() as i64;
    let mut total: i64 = seq.iter().map(|&d| d as i64).sum();
    let mut guard = 0;
    while total != target_total && guard < 10 * n {
        let i = rng.gen_range(0..n);
        if total < target_total && seq[i] < max_degree {
            seq[i] += 1;
            total += 1;
        } else if total > target_total && seq[i] > 1 {
            seq[i] -= 1;
            total -= 1;
        }
        guard += 1;
    }
    seq
}

fn mixed_mean(dmin: f64, max_degree: u32, exponent: f64) -> f64 {
    let floor = dmin.floor().max(1.0) as u32;
    let frac = dmin - floor as f64;
    let low = PowerLaw::new(floor, max_degree, exponent).mean();
    let high = PowerLaw::new((floor + 1).min(max_degree), max_degree, exponent).mean();
    low * (1.0 - frac) + high * frac
}

/// Partitions `n` items into power-law-sized groups within `[min, max]`.
/// The final group is padded/merged so sizes sum to exactly `n`.
pub fn community_sizes<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    min: u32,
    max: u32,
    exponent: f64,
) -> Vec<u32> {
    assert!(min >= 2 && min <= max);
    let pl = PowerLaw::new(min, max, exponent);
    let mut sizes = Vec::new();
    let mut remaining = n as i64;
    while remaining > 0 {
        let s = pl.sample(rng).min(remaining as u32);
        sizes.push(s);
        remaining -= s as i64;
    }
    // Merge a trailing too-small community into its predecessor.
    if sizes.len() >= 2 {
        let last = *sizes.last().unwrap();
        if last < min {
            let l = sizes.len();
            sizes[l - 2] += last;
            sizes.pop();
        }
    }
    debug_assert_eq!(sizes.iter().map(|&s| s as usize).sum::<usize>(), n);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let pl = PowerLaw::new(3, 50, 2.5);
        for _ in 0..10_000 {
            let x = pl.sample(&mut rng);
            assert!((3..=50).contains(&x));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed_downward() {
        // Small values should dominate for exponent > 1.
        let mut rng = StdRng::seed_from_u64(2);
        let pl = PowerLaw::new(1, 100, 2.5);
        let samples: Vec<u32> = (0..20_000).map(|_| pl.sample(&mut rng)).collect();
        let small = samples.iter().filter(|&&x| x <= 3).count();
        assert!(
            small > samples.len() / 2,
            "only {small} of {} samples <= 3",
            samples.len()
        );
    }

    #[test]
    fn analytic_mean_matches_empirical() {
        let mut rng = StdRng::seed_from_u64(3);
        let pl = PowerLaw::new(5, 100, 2.2);
        let m_emp: f64 = (0..200_000)
            .map(|_| pl.sample(&mut rng) as f64)
            .sum::<f64>()
            / 200_000.0;
        // Continuous-relaxation mean vs discrete sampling: allow a few percent.
        assert!(
            (m_emp - pl.mean()).abs() / pl.mean() < 0.06,
            "emp {m_emp} vs {}",
            pl.mean()
        );
    }

    #[test]
    fn degree_sequence_hits_target_mean_exactly_ish() {
        let mut rng = StdRng::seed_from_u64(4);
        for target in [8.0, 20.0, 50.0] {
            let seq = degree_sequence(&mut rng, 5_000, target, 2.5, 100);
            let mean = seq.iter().map(|&d| d as f64).sum::<f64>() / seq.len() as f64;
            assert!(
                (mean - target).abs() / target < 0.01,
                "target {target}, realized {mean}"
            );
            assert!(seq.iter().all(|&d| (1..=100).contains(&d)));
        }
    }

    #[test]
    fn community_sizes_partition_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [100usize, 997, 10_000] {
            let sizes = community_sizes(&mut rng, n, 10, 100, 1.5);
            assert_eq!(sizes.iter().map(|&s| s as usize).sum::<usize>(), n);
            // All but possibly boundary-adjusted communities respect bounds.
            for &s in &sizes {
                assert!(s >= 2, "degenerate community of size {s}");
            }
        }
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let a = degree_sequence(&mut StdRng::seed_from_u64(9), 1000, 12.0, 2.5, 64);
        let b = degree_sequence(&mut StdRng::seed_from_u64(9), 1000, 12.0, 2.5, 64);
        assert_eq!(a, b);
    }
}
