//! The benchmark dataset registry: laptop-scale analogues of Table I's real
//! graphs (GR01–GR05) and regenerations of Table II's LFR grid
//! (LFR01–LFR05 vary the average degree; LFR11–LFR15 vary the clustering
//! coefficient).
//!
//! The original SNAP/UF/LAW downloads are unavailable offline, so each GR
//! dataset is replaced by a generator tuned to the two statistics the paper
//! reports and analyzes — average degree `d̄` and average clustering
//! coefficient `c` — at a vertex count that keeps every experiment runnable
//! on one laptop core (the `scale` knob grows them back up). GR05
//! (`kron_g500`) maps to an R-MAT/Kronecker graph, matching its provenance.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::csr::CsrGraph;
use crate::gen::lfr::{calibrate_closure, lfr, LfrParams};
use crate::gen::rmat::{rmat, RmatParams};
use crate::gen::weights::WeightModel;

/// Identifiers of the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// ego-Gplus analogue (dense social graph, high clustering).
    Gr01,
    /// soc-LiveJournal1 analogue (sparse, moderate clustering).
    Gr02,
    /// soc-Pokec analogue (sparse, low clustering).
    Gr03,
    /// com-Orkut analogue (mid-density, low-mid clustering).
    Gr04,
    /// kron_g500-logn21 analogue (Kronecker/R-MAT, skewed degrees).
    Gr05,
    /// LFR grid, varying average degree (Table II top half).
    Lfr(u8),
}

impl DatasetId {
    /// The name used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            DatasetId::Gr01 => "ego-Gplus",
            DatasetId::Gr02 => "soc-LiveJournal1",
            DatasetId::Gr03 => "soc-Poket",
            DatasetId::Gr04 => "com-Orkut",
            DatasetId::Gr05 => "kron_g500-logn21",
            DatasetId::Lfr(1) => "LFR01",
            DatasetId::Lfr(2) => "LFR02",
            DatasetId::Lfr(3) => "LFR03",
            DatasetId::Lfr(4) => "LFR04",
            DatasetId::Lfr(5) => "LFR05",
            DatasetId::Lfr(11) => "LFR11",
            DatasetId::Lfr(12) => "LFR12",
            DatasetId::Lfr(13) => "LFR13",
            DatasetId::Lfr(14) => "LFR14",
            DatasetId::Lfr(15) => "LFR15",
            DatasetId::Lfr(_) => "LFR??",
        }
    }

    /// Short id used in file names and harness output (e.g. `GR01`).
    pub fn short(self) -> String {
        match self {
            DatasetId::Gr01 => "GR01".into(),
            DatasetId::Gr02 => "GR02".into(),
            DatasetId::Gr03 => "GR03".into(),
            DatasetId::Gr04 => "GR04".into(),
            DatasetId::Gr05 => "GR05".into(),
            DatasetId::Lfr(k) => format!("LFR{k:02}"),
        }
    }
}

/// Statistics the paper reports for the original dataset (Tables I and II).
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    pub vertices: u64,
    pub edges: u64,
    pub average_degree: f64,
    pub clustering_coefficient: f64,
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Lfr {
        base_n: usize,
        average_degree: f64,
        target_c: f64,
        mixing: f64,
        max_degree: u32,
        min_community: u32,
        max_community: u32,
    },
    Rmat {
        base_scale: u32,
        edge_factor: usize,
    },
}

/// A generatable benchmark dataset.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    pub id: DatasetId,
    pub paper: PaperStats,
    kind: Kind,
}

impl Dataset {
    /// Looks a dataset up by id; panics on an id outside the paper's tables.
    pub fn get(id: DatasetId) -> Dataset {
        Self::all()
            .into_iter()
            .find(|d| d.id == id)
            .unwrap_or_else(|| panic!("unknown dataset {id:?}"))
    }

    /// The five real-graph analogues of Table I.
    pub fn real_graphs() -> Vec<Dataset> {
        let ids = [
            DatasetId::Gr01,
            DatasetId::Gr02,
            DatasetId::Gr03,
            DatasetId::Gr04,
            DatasetId::Gr05,
        ];
        Self::all()
            .into_iter()
            .filter(|d| ids.contains(&d.id))
            .collect()
    }

    /// The ten LFR graphs of Table II.
    pub fn lfr_graphs() -> Vec<Dataset> {
        Self::all()
            .into_iter()
            .filter(|d| matches!(d.id, DatasetId::Lfr(_)))
            .collect()
    }

    /// LFR01–05 (degree sweep).
    pub fn lfr_degree_sweep() -> Vec<Dataset> {
        (1..=5).map(|k| Self::get(DatasetId::Lfr(k))).collect()
    }

    /// LFR11–15 (clustering-coefficient sweep).
    pub fn lfr_clustering_sweep() -> Vec<Dataset> {
        [11, 12, 13, 14, 15]
            .iter()
            .map(|&k| Self::get(DatasetId::Lfr(k)))
            .collect()
    }

    /// Everything in Tables I and II.
    pub fn all() -> Vec<Dataset> {
        let g = |id, pv, pe, pd, pc, base_n, d, c, mix, maxd, minc, maxc| Dataset {
            id,
            paper: PaperStats {
                vertices: pv,
                edges: pe,
                average_degree: pd,
                clustering_coefficient: pc,
            },
            kind: Kind::Lfr {
                base_n,
                average_degree: d,
                target_c: c,
                mixing: mix,
                max_degree: maxd,
                min_community: minc,
                max_community: maxc,
            },
        };
        let lfr_row = |k: u8, pe: u64, pd: f64, pc: f64, d: f64, c: f64| Dataset {
            id: DatasetId::Lfr(k),
            paper: PaperStats {
                vertices: 1_000_000,
                edges: pe,
                average_degree: pd,
                clustering_coefficient: pc,
            },
            kind: Kind::Lfr {
                base_n: 10_000,
                average_degree: d,
                target_c: c,
                mixing: 0.3,
                max_degree: 100,
                min_community: 60,
                max_community: 240,
            },
        };
        vec![
            // Table I analogues. `d̄` is kept (capped at 64 for GR01 so the
            // laptop-scale graph is not a near-clique), `c` is targeted by
            // calibration.
            g(
                DatasetId::Gr01,
                107_614,
                13_673_453,
                127.06,
                0.4901,
                4_000,
                64.0,
                0.49,
                0.25,
                256,
                120,
                420,
            ),
            g(
                DatasetId::Gr02,
                4_847_571,
                68_993_773,
                14.23,
                0.2742,
                20_000,
                14.2,
                0.27,
                0.30,
                100,
                30,
                160,
            ),
            g(
                DatasetId::Gr03,
                1_632_803,
                30_622_564,
                18.75,
                0.1094,
                12_000,
                18.7,
                0.11,
                0.35,
                100,
                40,
                200,
            ),
            g(
                DatasetId::Gr04,
                3_072_441,
                117_185_083,
                38.14,
                0.1666,
                10_000,
                38.1,
                0.17,
                0.30,
                150,
                60,
                300,
            ),
            Dataset {
                id: DatasetId::Gr05,
                paper: PaperStats {
                    vertices: 2_097_152,
                    edges: 182_082_942,
                    average_degree: 86.82,
                    clustering_coefficient: 0.1649,
                },
                kind: Kind::Rmat {
                    base_scale: 13,
                    edge_factor: 44,
                },
            },
            // Table II: degree sweep at c ≈ 0.40 ...
            lfr_row(1, 22_283_773, 44.567, 0.4017, 44.567, 0.40),
            lfr_row(2, 25_064_820, 50.129, 0.4007, 50.129, 0.40),
            lfr_row(3, 27_599_929, 55.199, 0.4022, 55.199, 0.40),
            lfr_row(4, 29_937_286, 59.874, 0.4011, 59.874, 0.40),
            lfr_row(5, 32_527_885, 65.055, 0.4004, 65.055, 0.40),
            // ... and clustering sweep at d̄ ≈ 50.1.
            lfr_row(11, 25_064_820, 50.129, 0.2012, 50.129, 0.20),
            lfr_row(12, 25_064_820, 50.129, 0.3029, 50.129, 0.30),
            lfr_row(13, 25_064_820, 50.129, 0.4168, 50.129, 0.42),
            lfr_row(14, 25_064_820, 50.129, 0.5012, 50.129, 0.50),
            lfr_row(15, 25_064_820, 50.129, 0.6003, 50.129, 0.60),
        ]
    }

    /// Number of vertices at scale 1.0.
    pub fn base_vertices(&self) -> usize {
        match self.kind {
            Kind::Lfr { base_n, .. } => base_n,
            Kind::Rmat { base_scale, .. } => 1 << base_scale,
        }
    }

    /// Generates the dataset at its default scale.
    /// Returns the graph and ground-truth labels (None for R-MAT).
    pub fn generate(&self, seed: u64) -> (CsrGraph, Option<Vec<u32>>) {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the dataset with the vertex count multiplied by `scale`.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> (CsrGraph, Option<Vec<u32>>) {
        assert!(scale > 0.0);
        let mut rng = StdRng::seed_from_u64(seed ^ dataset_salt(self.id));
        match self.kind {
            Kind::Lfr {
                base_n,
                average_degree,
                target_c,
                mixing,
                max_degree,
                min_community,
                max_community,
            } => {
                let n = ((base_n as f64 * scale).round() as usize).max(64);
                let base = LfrParams {
                    n,
                    average_degree,
                    max_degree,
                    degree_exponent: 2.5,
                    community_size_exponent: 1.5,
                    min_community,
                    max_community: max_community.min(n as u32 / 2).max(min_community),
                    mixing,
                    triangle_closure: 0.5,
                    locality_spread: 0.3,
                    dense_fraction: 0.12,
                    weights: WeightModel::uniform_default(),
                };
                // The per-community locality spread makes small calibration
                // samples noisy (few communities → high variance in mean c),
                // so calibrate on a larger slice.
                let calib_n = n.min(5_000);
                let tuned = calibrate_closure(&mut rng, &base, target_c, calib_n, 0.015);
                let (g, labels) = lfr(&mut rng, &tuned);
                (g, Some(labels))
            }
            Kind::Rmat {
                base_scale,
                edge_factor,
            } => {
                let extra = scale.log2().round() as i32;
                let s = (base_scale as i32 + extra).clamp(6, 28) as u32;
                let params = RmatParams {
                    weights: WeightModel::uniform_default(),
                    ..RmatParams::graph500(s, edge_factor)
                };
                (rmat(&mut rng, &params), None)
            }
        }
    }
}

/// Mixes the dataset identity into the seed so two datasets generated with
/// the same user seed do not share random streams.
fn dataset_salt(id: DatasetId) -> u64 {
    let tag: u64 = match id {
        DatasetId::Gr01 => 1,
        DatasetId::Gr02 => 2,
        DatasetId::Gr03 => 3,
        DatasetId::Gr04 => 4,
        DatasetId::Gr05 => 5,
        DatasetId::Lfr(k) => 100 + k as u64,
    };
    tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn registry_is_complete() {
        assert_eq!(Dataset::real_graphs().len(), 5);
        assert_eq!(Dataset::lfr_graphs().len(), 10);
        assert_eq!(Dataset::lfr_degree_sweep().len(), 5);
        assert_eq!(Dataset::lfr_clustering_sweep().len(), 5);
        assert_eq!(Dataset::all().len(), 15);
    }

    #[test]
    fn lookup_by_id() {
        let d = Dataset::get(DatasetId::Gr02);
        assert_eq!(d.id.paper_name(), "soc-LiveJournal1");
        assert_eq!(d.id.short(), "GR02");
        assert_eq!(DatasetId::Lfr(13).short(), "LFR13");
    }

    #[test]
    fn gr02_analogue_matches_paper_stats() {
        // Representative check of the calibration machinery (full sweep is
        // exercised by the table1/table2 harnesses).
        let d = Dataset::get(DatasetId::Gr02);
        let (g, labels) = d.generate_scaled(0.25, 7);
        assert!(labels.is_some());
        let s = graph_stats(&g);
        assert!(
            (s.average_degree - d.paper.average_degree).abs() / d.paper.average_degree < 0.15,
            "d̄ {} vs paper {}",
            s.average_degree,
            d.paper.average_degree
        );
        assert!(
            (s.average_clustering_coefficient - d.paper.clustering_coefficient).abs() < 0.10,
            "c {} vs paper {}",
            s.average_clustering_coefficient,
            d.paper.clustering_coefficient
        );
    }

    #[test]
    fn gr05_is_rmat_and_skewed() {
        let d = Dataset::get(DatasetId::Gr05);
        let (g, labels) = d.generate_scaled(0.125, 7);
        assert!(labels.is_none());
        assert_eq!(g.num_vertices(), 1 << 10);
        assert!(g.num_edges() > 1_000);
    }

    #[test]
    fn scaling_changes_size_deterministically() {
        let d = Dataset::get(DatasetId::Lfr(11));
        let (g_small, _) = d.generate_scaled(0.05, 3);
        let (g_small2, _) = d.generate_scaled(0.05, 3);
        assert_eq!(g_small, g_small2);
        assert_eq!(g_small.num_vertices(), 500);
    }
}
