//! LFR-style benchmark graphs (Lancichinetti–Fortunato–Radicchi [19]) with
//! tunable average degree and average clustering coefficient.
//!
//! The paper's Table II controls exactly three knobs of its LFR graphs —
//! |V|, average degree `d̄`, and average clustering coefficient `c` (with
//! max degree 100) — so this generator exposes precisely those, plus the
//! standard LFR ingredients: power-law degrees, power-law community sizes and
//! a per-vertex mixing fraction.
//!
//! Degrees and community sizes follow truncated power laws; intra-community
//! edges are wired by a wedge-closure process (a Holme–Kim-style triadic
//! closure step with probability [`LfrParams::triangle_closure`]) which is
//! the lever that raises the clustering coefficient; inter-community edges
//! come from global stub matching. [`calibrate_closure`] binary-searches the
//! closure probability to land on a target `c`.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::degree_seq::{community_sizes, degree_sequence};
use crate::gen::weights::WeightModel;
use crate::stats::graph_stats;
use crate::types::VertexId;

/// Parameters of the LFR-style generator.
#[derive(Debug, Clone, Copy)]
pub struct LfrParams {
    /// Number of vertices.
    pub n: usize,
    /// Target average (open) degree `d̄`.
    pub average_degree: f64,
    /// Maximum degree (the paper uses 100).
    pub max_degree: u32,
    /// Degree power-law exponent τ₁ (paper-standard 2.5).
    pub degree_exponent: f64,
    /// Community-size power-law exponent τ₂ (paper-standard 1.5).
    pub community_size_exponent: f64,
    /// Community size bounds.
    pub min_community: u32,
    pub max_community: u32,
    /// Mixing parameter μ_mix: fraction of each vertex's edges leaving its
    /// community.
    pub mixing: f64,
    /// Locality share in `[0,1]`: the fraction of each vertex's
    /// intra-community budget wired as a Watts–Strogatz-style ring lattice
    /// (raises the clustering coefficient toward ≈0.7); the rest is wired
    /// uniformly at random inside the community. 0 recovers plain random
    /// intra wiring.
    pub triangle_closure: f64,
    /// Per-community spread of the locality share: community i draws its own
    /// locality uniformly from `triangle_closure ± locality_spread`
    /// (clamped to [0,1]). Real graphs with a low *average* clustering
    /// coefficient still contain dense pockets; the spread reproduces that
    /// heterogeneity so high-ε sweeps keep finding (fewer) cores instead of
    /// collapsing to all-noise.
    pub locality_spread: f64,
    /// Fraction of communities wired as near-cliquish dense pockets
    /// (locality ≈ 0.9–1.0) regardless of the base locality. Models the
    /// tight friend groups real social graphs keep even when their *average*
    /// clustering coefficient is low; 0 disables.
    pub dense_fraction: f64,
    pub weights: WeightModel,
}

impl LfrParams {
    /// Baseline configuration matching the paper's synthetic study shape:
    /// max degree 100, τ₁ = 2.5, τ₂ = 1.5, mixing 0.3.
    pub fn paper_defaults(n: usize, average_degree: f64) -> Self {
        LfrParams {
            n,
            average_degree,
            max_degree: 100,
            degree_exponent: 2.5,
            community_size_exponent: 1.5,
            min_community: 40,
            max_community: 200,
            mixing: 0.3,
            triangle_closure: 0.5,
            locality_spread: 0.35,
            dense_fraction: 0.1,
            weights: WeightModel::uniform_default(),
        }
    }
}

/// Generates an LFR-style graph; returns the graph and the planted
/// ground-truth community of every vertex.
pub fn lfr<R: Rng + ?Sized>(rng: &mut R, params: &LfrParams) -> (CsrGraph, Vec<u32>) {
    let n = params.n;
    assert!(params.average_degree >= 1.0);
    assert!((0.0..=1.0).contains(&params.mixing));
    assert!((0.0..=1.0).contains(&params.triangle_closure));
    if n == 0 {
        return (GraphBuilder::new(0).build(), Vec::new());
    }

    let degrees = degree_sequence(
        rng,
        n,
        params.average_degree,
        params.degree_exponent,
        params.max_degree.min(n as u32 - 1).max(2),
    );

    // --- Community assignment -------------------------------------------
    let max_comm = params.max_community.min(n as u32).max(params.min_community);
    let sizes = community_sizes(
        rng,
        n,
        params.min_community,
        max_comm,
        params.community_size_exponent,
    );
    let num_comms = sizes.len();
    // Target intra-degree per vertex; a vertex cannot have more intra
    // neighbors than its community has other members, so big-degree vertices
    // must land in big communities. Greedy: descending intra-degree into the
    // community with the most remaining capacity (randomized among ties).
    let mut intra_target: Vec<u32> = degrees
        .iter()
        .map(|&d| ((d as f64) * (1.0 - params.mixing)).round() as u32)
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    order.sort_by_key(|&v| std::cmp::Reverse(intra_target[v as usize]));

    let mut capacity: Vec<u32> = sizes.clone();
    let mut labels = vec![0u32; n];
    // Index communities by remaining capacity, preferring ones large enough.
    for &v in &order {
        let need = intra_target[v as usize];
        // Among communities with remaining capacity, prefer one whose total
        // size exceeds the intra-degree; sample proportional to capacity.
        let mut best: Option<usize> = None;
        let mut total_cap: u64 = 0;
        for (c, &cap) in capacity.iter().enumerate() {
            if cap == 0 {
                continue;
            }
            if sizes[c] > need {
                total_cap += cap as u64;
            }
            match best {
                Some(b) if capacity[b] >= cap => {}
                _ => best = Some(c),
            }
        }
        let chosen = if total_cap > 0 {
            let mut pick = rng.gen_range(0..total_cap);
            let mut sel = 0usize;
            for (c, &cap) in capacity.iter().enumerate() {
                if cap == 0 || sizes[c] <= need {
                    continue;
                }
                if pick < cap as u64 {
                    sel = c;
                    break;
                }
                pick -= cap as u64;
            }
            sel
        } else {
            best.expect("community capacities exhausted before all vertices placed")
        };
        labels[v as usize] = chosen as u32;
        capacity[chosen] -= 1;
        // Clamp intra-degree to what the community can support.
        intra_target[v as usize] = need.min(sizes[chosen] - 1);
    }

    // --- Intra-community wiring --------------------------------------------
    // Two phases per community. Phase 1 spends a `locality` fraction of each
    // vertex's intra budget on a Watts–Strogatz-style ring lattice (members
    // laid out on a ring, connected at increasing ring distance), which makes
    // neighborhoods overlap heavily and drives the clustering coefficient up
    // to ≈0.7. Phase 2 wires the remaining budget uniformly at random within
    // the community, whose clustering contribution is just the community edge
    // density. The mix is what `calibrate_closure` searches over.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_comms];
    for v in 0..n as u32 {
        members[labels[v as usize] as usize].push(v);
    }
    let mut edge_set: HashSet<(VertexId, VertexId)> = HashSet::new();
    let mut builder =
        GraphBuilder::with_capacity(n, (params.average_degree * n as f64 / 2.0) as usize);
    let mut remaining = intra_target.clone();

    for comm in members.iter_mut() {
        if comm.len() < 2 {
            continue;
        }
        comm.shuffle(rng);
        // Ring ordered by intra budget (ties broken by the shuffle): adjacent
        // ring positions then exhaust their lattice budgets together, so the
        // lattice stays local and its clustering contribution stays high even
        // with power-law degrees.
        comm.sort_by_key(|&v| intra_target[v as usize]);
        let s = comm.len();

        // Phase 1: ring lattice on this community's own locality share.
        let locality = if rng.gen::<f64>() < params.dense_fraction {
            0.9 + 0.1 * rng.gen::<f64>()
        } else {
            (params.triangle_closure + params.locality_spread * (rng.gen::<f64>() * 2.0 - 1.0))
                .clamp(0.0, 1.0)
        };
        let mut lattice: Vec<u32> = comm
            .iter()
            .map(|&v| (locality * intra_target[v as usize] as f64).round() as u32)
            .collect();
        let mut active: u64 = lattice.iter().map(|&b| b as u64).sum();
        let mut k = 1usize;
        while active >= 2 && k <= s / 2 {
            for i in 0..s {
                let j = (i + k) % s;
                // For even s at distance s/2 each pair appears twice.
                if k == s - k && i >= j {
                    continue;
                }
                if lattice[i] == 0 || lattice[j] == 0 {
                    continue;
                }
                let (v, x) = (comm[i], comm[j]);
                if !edge_set.insert(key(v, x)) {
                    continue;
                }
                let w = params.weights.draw(rng, true);
                builder.add_edge(v, x, w);
                lattice[i] -= 1;
                lattice[j] -= 1;
                remaining[v as usize] = remaining[v as usize].saturating_sub(1);
                remaining[x as usize] = remaining[x as usize].saturating_sub(1);
                active -= 2;
            }
            k += 1;
        }

        // Phase 2: uniform random matching of the leftover budget.
        let mut open: Vec<VertexId> = comm
            .iter()
            .copied()
            .filter(|&v| remaining[v as usize] > 0)
            .collect();
        let mut stall = 0usize;
        while open.len() >= 2 && stall < 12 {
            let v = open[rng.gen_range(0..open.len())];
            let mut partner = None;
            for _ in 0..8 {
                let x = open[rng.gen_range(0..open.len())];
                if x != v && !edge_set.contains(&key(v, x)) {
                    partner = Some(x);
                    break;
                }
            }
            let Some(x) = partner else {
                stall += 1;
                continue;
            };
            stall = 0;
            edge_set.insert(key(v, x));
            let w = params.weights.draw(rng, true);
            builder.add_edge(v, x, w);
            for &e in &[v, x] {
                remaining[e as usize] -= 1;
            }
            open.retain(|&o| remaining[o as usize] > 0);
        }
    }

    // --- Inter-community stub matching ------------------------------------
    // Any intra budget a community could not absorb is converted into inter
    // stubs so every vertex still reaches its target degree.
    let mut stubs: Vec<VertexId> = Vec::new();
    for v in 0..n as u32 {
        let achieved_intra = intra_target[v as usize] - remaining[v as usize];
        let ext = degrees[v as usize].saturating_sub(achieved_intra);
        for _ in 0..ext {
            stubs.push(v);
        }
    }
    stubs.shuffle(rng);
    // Pair adjacent stubs; on conflict (same community, duplicate, self),
    // retry against a random later stub a few times, else drop the pair.
    let mut i = 0;
    while i + 1 < stubs.len() {
        let u = stubs[i];
        let mut matched = false;
        for attempt in 0..8 {
            let j = if attempt == 0 {
                i + 1
            } else {
                rng.gen_range(i + 1..stubs.len())
            };
            let v = stubs[j];
            if v != u && labels[u as usize] != labels[v as usize] && !edge_set.contains(&key(u, v))
            {
                stubs.swap(i + 1, j);
                edge_set.insert(key(u, v));
                let w = params.weights.draw(rng, false);
                builder.add_edge(u, v, w);
                matched = true;
                break;
            }
        }
        i += if matched { 2 } else { 1 };
    }

    (builder.build(), labels)
}

#[inline]
fn key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    (u.min(v), u.max(v))
}

/// Tunes [`LfrParams::triangle_closure`] (and, when that lever saturates,
/// [`LfrParams::mixing`] — Table II pins only `d̄` and `c`, not the mixing)
/// so the generated graph's average clustering coefficient lands within
/// `tol` of `target_c`, or as close as the levers allow. Calibration runs on
/// graphs of `calib_n` vertices to stay fast; returns the tuned parameters.
pub fn calibrate_closure<R: Rng + ?Sized>(
    rng: &mut R,
    base: &LfrParams,
    target_c: f64,
    calib_n: usize,
    tol: f64,
) -> LfrParams {
    // Common random numbers: every probe regenerates from the same derived
    // seed so c(p) is (near-)monotone in p and the binary search converges.
    let probe_seed: u64 = rng.gen();
    let probe = |p: f64, mixing: f64| -> f64 {
        let mut params = *base;
        params.n = calib_n.min(base.n);
        params.triangle_closure = p;
        params.mixing = mixing;
        let mut prng = rand::rngs::StdRng::seed_from_u64(probe_seed);
        let (g, _) = lfr(&mut prng, &params);
        graph_stats(&g).average_clustering_coefficient
    };

    let mut out = *base;
    let c_lo = probe(0.0, out.mixing);
    if c_lo >= target_c {
        // Baseline already at/above target; the locality lever only raises c.
        out.triangle_closure = 0.0;
        return out;
    }
    // Inter-community edges close no triangles, so c is capped near
    // (1 - mixing)² · c_lattice; shrink the mixing until the target becomes
    // reachable with full locality.
    let mut c_hi = probe(1.0, out.mixing);
    while c_hi < target_c && out.mixing > 0.02 {
        out.mixing = (out.mixing * 0.6).max(0.02);
        c_hi = probe(1.0, out.mixing);
    }
    if c_hi <= target_c {
        out.triangle_closure = 1.0;
        return out;
    }

    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut best = hi;
    let mut best_err = (c_hi - target_c).abs();
    for _ in 0..10 {
        let mid = 0.5 * (lo + hi);
        let c = probe(mid, out.mixing);
        let err = (c - target_c).abs();
        if err < best_err {
            best_err = err;
            best = mid;
        }
        if err < tol {
            break;
        }
        if c < target_c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    out.triangle_closure = best;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> LfrParams {
        LfrParams {
            n: 2_000,
            average_degree: 16.0,
            max_degree: 60,
            degree_exponent: 2.5,
            community_size_exponent: 1.5,
            min_community: 20,
            max_community: 100,
            mixing: 0.25,
            triangle_closure: 0.4,
            locality_spread: 0.0,
            dense_fraction: 0.0,
            weights: WeightModel::Unit,
        }
    }

    #[test]
    fn hits_average_degree() {
        let mut rng = StdRng::seed_from_u64(100);
        let (g, _) = lfr(&mut rng, &small_params());
        g.check_invariants().unwrap();
        let d = g.average_degree();
        // Stub drops cause a small deficit; 10% slack.
        assert!(
            (d - 16.0).abs() / 16.0 < 0.10,
            "realized average degree {d}"
        );
    }

    #[test]
    fn mixing_controls_inter_community_fraction() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut p = small_params();
        p.mixing = 0.1;
        let (g, labels) = lfr(&mut rng, &p);
        let inter = g
            .edges()
            .filter(|&(u, v, _)| labels[u as usize] != labels[v as usize])
            .count() as f64;
        let frac = inter / g.num_edges() as f64;
        // Hub clamping (intra degree capped at community size - 1) spills
        // some intra budget into inter stubs, so the realized fraction runs
        // above the nominal mixing; it must still clearly separate regimes.
        assert!(frac < 0.25, "inter fraction {frac} too high for mixing 0.1");

        let mut rng = StdRng::seed_from_u64(101);
        p.mixing = 0.6;
        let (g, labels) = lfr(&mut rng, &p);
        let inter = g
            .edges()
            .filter(|&(u, v, _)| labels[u as usize] != labels[v as usize])
            .count() as f64;
        let frac_high = inter / g.num_edges() as f64;
        assert!(
            frac_high > 0.4,
            "inter fraction {frac_high} too low for mixing 0.6"
        );
    }

    #[test]
    fn triangle_closure_raises_clustering() {
        let mut p = small_params();
        p.triangle_closure = 0.0;
        let (g0, _) = lfr(&mut StdRng::seed_from_u64(102), &p);
        p.triangle_closure = 0.85;
        let (g1, _) = lfr(&mut StdRng::seed_from_u64(102), &p);
        let c0 = crate::stats::graph_stats(&g0).average_clustering_coefficient;
        let c1 = crate::stats::graph_stats(&g1).average_clustering_coefficient;
        assert!(
            c1 > c0 + 0.05,
            "closure did not raise clustering: {c0} -> {c1}"
        );
    }

    #[test]
    fn labels_cover_all_vertices_with_sane_communities() {
        let mut rng = StdRng::seed_from_u64(103);
        let p = small_params();
        let (g, labels) = lfr(&mut rng, &p);
        assert_eq!(labels.len(), g.num_vertices());
        let k = *labels.iter().max().unwrap() as usize + 1;
        let mut sizes = vec![0u32; k];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0));
        assert!(k >= 2_000 / 100, "too few communities: {k}");
    }

    #[test]
    fn calibration_converges_to_target() {
        let mut rng = StdRng::seed_from_u64(104);
        let base = small_params();
        let tuned = calibrate_closure(&mut rng, &base, 0.35, 1_500, 0.02);
        let (g, _) = lfr(&mut StdRng::seed_from_u64(105), &tuned);
        let c = crate::stats::graph_stats(&g).average_clustering_coefficient;
        assert!((c - 0.35).abs() < 0.08, "calibrated c = {c}, wanted ~0.35");
    }

    #[test]
    fn deterministic() {
        let p = small_params();
        let a = lfr(&mut StdRng::seed_from_u64(106), &p);
        let b = lfr(&mut StdRng::seed_from_u64(106), &p);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn degenerate_inputs() {
        let mut p = small_params();
        p.n = 0;
        let (g, l) = lfr(&mut StdRng::seed_from_u64(0), &p);
        assert_eq!(g.num_vertices(), 0);
        assert!(l.is_empty());
    }
}
