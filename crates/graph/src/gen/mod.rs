//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on five SNAP/UF/LAW graphs (Table I) and ten LFR
//! benchmark graphs (Table II). The real datasets cannot be fetched in this
//! environment, so [`datasets`] provides scaled-down *analogues* generated to
//! match the two statistics the paper reports and sweeps — average degree
//! `d̄` and average clustering coefficient `c` — while the LFR grid is
//! regenerated directly from its published parameters (1 M vertices in the
//! paper, laptop-scale here; both knobs preserved).
//!
//! All generators are deterministic functions of their seed.

pub mod classic;
pub mod datasets;
pub mod degree_seq;
pub mod erdos_renyi;
pub mod lfr;
pub mod rmat;
pub mod sbm;
pub mod weights;

pub use classic::{barabasi_albert, watts_strogatz};
pub use datasets::{Dataset, DatasetId};
pub use erdos_renyi::erdos_renyi;
pub use lfr::{lfr, LfrParams};
pub use rmat::{rmat, RmatParams};
pub use sbm::{planted_partition, PlantedPartitionParams};
pub use weights::WeightModel;
