//! Erdős–Rényi `G(n, m)` random graphs.

use std::collections::HashSet;

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::weights::WeightModel;
use crate::types::VertexId;

/// Generates a `G(n, m)` graph with exactly `m` distinct edges (capped at
/// `n·(n-1)/2`), weighted per `weights`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    weights: WeightModel,
) -> CsrGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            let w = weights.draw(rng, false);
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = erdos_renyi(&mut rng, 500, 2000, WeightModel::Unit);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 2000);
        g.check_invariants().unwrap();
    }

    #[test]
    fn caps_at_complete_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi(&mut rng, 10, 1_000, WeightModel::Unit);
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn deterministic_for_seed() {
        let g1 = erdos_renyi(
            &mut StdRng::seed_from_u64(7),
            100,
            300,
            WeightModel::uniform_default(),
        );
        let g2 = erdos_renyi(
            &mut StdRng::seed_from_u64(7),
            100,
            300,
            WeightModel::uniform_default(),
        );
        assert_eq!(g1, g2);
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = erdos_renyi(&mut rng, 0, 10, WeightModel::Unit);
        assert_eq!(g.num_vertices(), 0);
        let g = erdos_renyi(&mut rng, 1, 10, WeightModel::Unit);
        assert_eq!(g.num_edges(), 0);
    }
}
