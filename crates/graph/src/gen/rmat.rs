//! R-MAT (recursive matrix) Kronecker-style generator.
//!
//! The paper's GR05 (`kron_g500-logn21`) is a Graph500 Kronecker graph; R-MAT
//! with the Graph500 probabilities (a=0.57, b=0.19, c=0.19, d=0.05) is the
//! standard procedural stand-in and reproduces its skewed degree
//! distribution.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::weights::WeightModel;
use crate::types::VertexId;

/// R-MAT parameters. The graph has `2^scale` vertices and
/// `edge_factor · 2^scale` sampled arcs (duplicates collapse, so the final
/// undirected edge count is somewhat lower, as in Graph500).
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    pub scale: u32,
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub weights: WeightModel,
}

impl RmatParams {
    /// Graph500 reference probabilities.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatParams {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            weights: WeightModel::uniform_default(),
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph.
pub fn rmat<R: Rng + ?Sized>(rng: &mut R, params: &RmatParams) -> CsrGraph {
    assert!(params.scale <= 31, "scale too large for u32 vertex ids");
    let d = params.d();
    assert!(
        params.a >= 0.0 && params.b >= 0.0 && params.c >= 0.0 && d >= -1e-9,
        "quadrant probabilities must be non-negative and sum to <= 1"
    );
    let n = 1usize << params.scale;
    let target_arcs = params.edge_factor * n;
    let mut b = GraphBuilder::with_capacity(n, target_arcs);
    // Graph500 noise: perturb quadrant probabilities per level to avoid the
    // perfectly self-similar artifacts of vanilla R-MAT.
    for _ in 0..target_arcs {
        let (mut x, mut y) = (0usize, 0usize);
        for _ in 0..params.scale {
            let (mut pa, mut pb, mut pc) = (params.a, params.b, params.c);
            let noise = 0.1;
            pa *= 1.0 + noise * (rng.gen::<f64>() - 0.5);
            pb *= 1.0 + noise * (rng.gen::<f64>() - 0.5);
            pc *= 1.0 + noise * (rng.gen::<f64>() - 0.5);
            let pd = (1.0 - params.a - params.b - params.c).max(0.0)
                * (1.0 + noise * (rng.gen::<f64>() - 0.5));
            let z = pa + pb + pc + pd;
            let r: f64 = rng.gen::<f64>() * z;
            x <<= 1;
            y <<= 1;
            if r < pa {
                // top-left: no bits set
            } else if r < pa + pb {
                y |= 1;
            } else if r < pa + pb + pc {
                x |= 1;
            } else {
                x |= 1;
                y |= 1;
            }
        }
        if x != y {
            let w = params.weights.draw(rng, false);
            b.add_edge(x as VertexId, y as VertexId, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vertex_count_is_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(&mut rng, &RmatParams::graph500(8, 8));
        assert_eq!(g.num_vertices(), 256);
        g.check_invariants().unwrap();
        // Duplicates collapse, so undirected edges < sampled arcs.
        assert!(g.num_edges() <= 8 * 256);
        assert!(
            g.num_edges() > 256,
            "suspiciously sparse: {}",
            g.num_edges()
        );
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = rmat(&mut rng, &RmatParams::graph500(10, 16));
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.open_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees[..degrees.len() / 100].iter().sum::<usize>() as f64;
        let total = degrees.iter().sum::<usize>() as f64;
        // Top 1% of vertices should hold far more than 1% of degree mass.
        assert!(top / total > 0.05, "top share only {}", top / total);
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::graph500(7, 4);
        let a = rmat(&mut StdRng::seed_from_u64(3), &p);
        let b = rmat(&mut StdRng::seed_from_u64(3), &p);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scale too large")]
    fn rejects_oversized_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rmat(&mut rng, &RmatParams::graph500(40, 1));
    }
}
