//! Classic random-graph models: Barabási–Albert preferential attachment and
//! the Watts–Strogatz small world. Useful as additional workloads for the
//! examples and for stress-testing the algorithms on degree-skewed and
//! high-clustering regimes beyond the paper's dataset grid.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::weights::WeightModel;
use crate::types::VertexId;

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m` existing vertices chosen proportionally
/// to their degree (implemented with the standard repeated-endpoint trick).
pub fn barabasi_albert<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    weights: WeightModel,
) -> CsrGraph {
    assert!(m >= 1, "attachment count must be >= 1");
    if n <= m + 1 {
        // Too small for the process: return a clique.
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v, weights.draw(rng, false));
            }
        }
        return b.build();
    }
    let mut b = GraphBuilder::with_capacity(n, n * m);
    // `endpoints` holds each edge endpoint once: sampling uniformly from it
    // IS degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique over m+1 vertices.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            b.add_edge(u, v, weights.draw(rng, false));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m as VertexId + 1)..n as VertexId {
        let mut targets = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        for &t in &targets {
            b.add_edge(v, t, weights.draw(rng, false));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: a ring lattice where every vertex connects to
/// its `k/2` nearest neighbors on each side, with each lattice edge rewired
/// to a random endpoint with probability `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    beta: f64,
    weights: WeightModel,
) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!((0.0..=1.0).contains(&beta));
    assert!(n > k, "need n > k");
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    let mut present = std::collections::HashSet::new();
    for u in 0..n as VertexId {
        for offset in 1..=(k / 2) as VertexId {
            let mut v = (u + offset) % n as VertexId;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a fresh random vertex.
                let mut guard = 0;
                loop {
                    let cand = rng.gen_range(0..n as VertexId);
                    if cand != u && !present.contains(&(u.min(cand), u.max(cand))) {
                        v = cand;
                        break;
                    }
                    guard += 1;
                    if guard > 50 {
                        break; // keep the lattice edge
                    }
                }
            }
            if u != v && present.insert((u.min(v), u.max(v))) {
                b.add_edge(u, v, weights.draw(rng, false));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(60);
        let g = barabasi_albert(&mut rng, 3_000, 4, WeightModel::Unit);
        g.check_invariants().unwrap();
        // ~ n*m edges.
        assert!(g.num_edges() as f64 > 0.9 * 3_000.0 * 4.0);
        let mut degs: Vec<usize> = g.vertices().map(|v| g.open_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs exist: the max degree far exceeds the mean.
        let mean = 2.0 * g.num_edges() as f64 / 3_000.0;
        assert!(
            degs[0] as f64 > 5.0 * mean,
            "max {} vs mean {mean}",
            degs[0]
        );
    }

    #[test]
    fn ba_small_n_degenerates_to_clique() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = barabasi_albert(&mut rng, 4, 5, WeightModel::Unit);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn ws_zero_beta_is_a_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = watts_strogatz(&mut rng, 100, 6, 0.0, WeightModel::Unit);
        g.check_invariants().unwrap();
        assert_eq!(g.num_edges(), 100 * 3);
        for v in g.vertices() {
            assert_eq!(g.open_degree(v), 6);
        }
        // Ring lattice k=6 has clustering 0.6.
        let c = graph_stats(&g).average_clustering_coefficient;
        assert!((c - 0.6).abs() < 1e-9, "c = {c}");
    }

    #[test]
    fn ws_rewiring_lowers_clustering() {
        let c_at = |beta: f64| {
            let mut rng = StdRng::seed_from_u64(63);
            let g = watts_strogatz(&mut rng, 500, 8, beta, WeightModel::Unit);
            graph_stats(&g).average_clustering_coefficient
        };
        let (c0, c_half, c1) = (c_at(0.0), c_at(0.5), c_at(1.0));
        assert!(
            c0 > c_half && c_half > c1,
            "{c0} > {c_half} > {c1} violated"
        );
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(
            &mut StdRng::seed_from_u64(64),
            300,
            3,
            WeightModel::uniform_default(),
        );
        let b = barabasi_albert(
            &mut StdRng::seed_from_u64(64),
            300,
            3,
            WeightModel::uniform_default(),
        );
        assert_eq!(a, b);
        let a = watts_strogatz(
            &mut StdRng::seed_from_u64(65),
            300,
            4,
            0.2,
            WeightModel::Unit,
        );
        let b = watts_strogatz(
            &mut StdRng::seed_from_u64(65),
            300,
            4,
            0.2,
            WeightModel::Unit,
        );
        assert_eq!(a, b);
    }
}
