//! Edge-weight models.
//!
//! Table I's datasets are unweighted; the paper's extension (Definition 1)
//! targets weighted graphs, so the harness assigns synthetic weights. Weights
//! stay in `(0, 1]` so the canonical unit self-loop is never dominated by a
//! noisy edge and the Lemma-5 bound remains tight.

use rand::Rng;

/// How edge weights are assigned during generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights 1.0 — Definition 1 collapses to original (unweighted) SCAN.
    Unit,
    /// Independent uniform weights in `[lo, hi]` (0 < lo <= hi <= 1).
    Uniform { lo: f64, hi: f64 },
    /// Community-aware: intra-community edges draw from `[0.6, 1.0]`,
    /// inter-community edges from `[0.1, 0.5]`, strengthening the planted
    /// structure the SCAN family is meant to recover.
    CommunityCorrelated,
}

impl WeightModel {
    /// The harness default for the GR analogues: uniform weights in
    /// `[0.5, 1.0]`. The spread keeps the weighted similarity genuinely
    /// weighted while deflating σ by only ≈4 % relative to the unweighted
    /// case (deflation ≈ m²/(m²+v) for i.i.d. weights), so the paper's
    /// ε ∈ [0.2, 0.8] sweeps bite the same cluster structure they do on the
    /// original datasets.
    pub fn uniform_default() -> Self {
        WeightModel::Uniform { lo: 0.5, hi: 1.0 }
    }

    /// Draws a weight for an edge; `intra` says whether both endpoints share
    /// a ground-truth community (ignored by the non-community models).
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R, intra: bool) -> f64 {
        match *self {
            WeightModel::Unit => 1.0,
            WeightModel::Uniform { lo, hi } => {
                debug_assert!(0.0 < lo && lo <= hi && hi <= 1.0);
                rng.gen_range(lo..=hi)
            }
            WeightModel::CommunityCorrelated => {
                if intra {
                    rng.gen_range(0.6..=1.0)
                } else {
                    rng.gen_range(0.1..=0.5)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_model_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(WeightModel::Unit.draw(&mut rng, true), 1.0);
        assert_eq!(WeightModel::Unit.draw(&mut rng, false), 1.0);
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = WeightModel::Uniform { lo: 0.25, hi: 0.75 };
        for _ in 0..1000 {
            let w = m.draw(&mut rng, false);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn community_correlated_separates_intra_and_inter() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = WeightModel::CommunityCorrelated;
        for _ in 0..1000 {
            assert!(m.draw(&mut rng, true) >= 0.6);
            assert!(m.draw(&mut rng, false) <= 0.5);
        }
    }
}
