//! Planted-partition (symmetric stochastic block model) graphs with
//! ground-truth community labels.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::weights::WeightModel;
use crate::types::VertexId;

/// Parameters of the planted-partition model: `num_communities` equal-sized
/// blocks over `n` vertices; each intra-block pair is an edge with
/// probability `p_in`, each inter-block pair with probability `p_out`.
#[derive(Debug, Clone, Copy)]
pub struct PlantedPartitionParams {
    pub n: usize,
    pub num_communities: usize,
    pub p_in: f64,
    pub p_out: f64,
    pub weights: WeightModel,
}

impl PlantedPartitionParams {
    /// A well-separated default useful in tests and examples.
    pub fn well_separated(n: usize, num_communities: usize) -> Self {
        PlantedPartitionParams {
            n,
            num_communities,
            p_in: 0.3,
            p_out: 0.005,
            weights: WeightModel::CommunityCorrelated,
        }
    }
}

/// Generates the graph and its planted labels (`labels[v]` = community of v).
pub fn planted_partition<R: Rng + ?Sized>(
    rng: &mut R,
    params: &PlantedPartitionParams,
) -> (CsrGraph, Vec<u32>) {
    let PlantedPartitionParams {
        n,
        num_communities,
        p_in,
        p_out,
        weights,
    } = *params;
    assert!(num_communities >= 1);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let labels: Vec<u32> = (0..n)
        .map(|v| (v * num_communities / n.max(1)) as u32)
        .collect();

    let mut b = GraphBuilder::new(n);
    // Geometric skipping over the strictly-upper-triangular pair index:
    // visits only O(#edges) pairs instead of O(n²).
    let emit = |rng: &mut R, b: &mut GraphBuilder, p: f64, same: bool| {
        if p <= 0.0 || n < 2 {
            return;
        }
        let total = n as u64 * (n as u64 - 1) / 2;
        let mut idx: u64 = 0;
        loop {
            // Skip ~Geometric(p) pairs.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = if p >= 1.0 {
                0
            } else {
                (u.ln() / (1.0 - p).ln()).floor() as u64
            };
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= total {
                break;
            }
            let (x, y) = unrank_pair(idx, n as u64);
            let intra = labels[x as usize] == labels[y as usize];
            if intra == same {
                let w = weights.draw(rng, intra);
                b.add_edge(x as VertexId, y as VertexId, w);
            }
            idx += 1;
        }
    };
    emit(rng, &mut b, p_in, true);
    emit(rng, &mut b, p_out, false);
    (b.build(), labels)
}

/// Maps a linear index over `{(x,y) : 0 <= x < y < n}` (ordered by `x`, then
/// `y`) back to the pair.
fn unrank_pair(idx: u64, n: u64) -> (u64, u64) {
    // Row x owns (n-1-x) pairs. Solve the triangular prefix by the quadratic
    // formula, then fix up rounding.
    let total = n * (n - 1) / 2;
    debug_assert!(idx < total);
    let rem = total - idx; // pairs from idx to the end
                           // Find smallest x with suffix(x) >= rem, where suffix(x) = (n-x)(n-x-1)/2.
    let mut x = n - 2 - ((((8 * rem) as f64 + 1.0).sqrt() as u64).saturating_sub(1) / 2).min(n - 2);
    loop {
        let suffix = (n - x) * (n - x - 1) / 2;
        if suffix < rem {
            x -= 1;
        } else if x < n - 2 && (n - x - 1) * (n - x - 2) / 2 >= rem {
            x += 1;
        } else {
            break;
        }
    }
    let before = total - (n - x) * (n - x - 1) / 2;
    let y = x + 1 + (idx - before);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unrank_is_a_bijection() {
        for n in [2u64, 3, 5, 17] {
            let total = n * (n - 1) / 2;
            let mut seen = std::collections::HashSet::new();
            for idx in 0..total {
                let (x, y) = unrank_pair(idx, n);
                assert!(x < y && y < n, "bad pair ({x},{y}) at idx {idx}, n={n}");
                assert!(seen.insert((x, y)));
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn unrank_is_ordered() {
        let n = 6;
        let mut prev = (0, 0);
        for idx in 0..(n * (n - 1) / 2) {
            let p = unrank_pair(idx, n);
            if idx > 0 {
                assert!(p > prev, "pairs must increase lexicographically");
            }
            prev = p;
        }
    }

    #[test]
    fn intra_density_dominates() {
        let mut rng = StdRng::seed_from_u64(42);
        let params = PlantedPartitionParams {
            n: 600,
            num_communities: 3,
            p_in: 0.2,
            p_out: 0.01,
            weights: WeightModel::Unit,
        };
        let (g, labels) = planted_partition(&mut rng, &params);
        g.check_invariants().unwrap();
        let (mut intra, mut inter) = (0u64, 0u64);
        for (u, v, _) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected intra ≈ 3 * C(200,2) * 0.2 ≈ 11_940; inter ≈ 0.01 * 120_000 = 1_200.
        assert!(intra > 10_000 && intra < 14_000, "intra {intra}");
        assert!(inter > 800 && inter < 1_700, "inter {inter}");
    }

    #[test]
    fn labels_are_balanced_blocks() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, labels) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 100,
                num_communities: 4,
                p_in: 0.0,
                p_out: 0.0,
                weights: WeightModel::Unit,
            },
        );
        for c in 0..4u32 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 25);
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 30,
                num_communities: 3,
                p_in: 1.0,
                p_out: 0.0,
                weights: WeightModel::Unit,
            },
        );
        // Three disjoint 10-cliques.
        assert_eq!(g.num_edges(), 3 * 45);
        let (_, k) = crate::traversal::connected_components(&g);
        assert_eq!(k, 3);
    }

    #[test]
    fn deterministic() {
        let p = PlantedPartitionParams::well_separated(200, 4);
        let a = planted_partition(&mut StdRng::seed_from_u64(5), &p);
        let b = planted_partition(&mut StdRng::seed_from_u64(5), &p);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
