//! Edge-at-a-time graph construction.

use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId, Weight};

/// Builds a [`CsrGraph`] from an unordered stream of undirected edges.
///
/// The builder:
/// * symmetrizes — `add_edge(u, v, w)` creates both arcs;
/// * deduplicates — parallel edges keep the **maximum** weight (deterministic
///   and independent of insertion order);
/// * drops explicit self-loops from the input (the canonical unit self-loop
///   is inserted for every vertex at build time);
/// * sorts every adjacency list by neighbor id.
///
/// ```
/// use anyscan_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 0.4);
/// b.add_edge(1, 0, 0.9); // duplicate: max weight wins
/// let g = b.build();
/// assert_eq!(g.edge_weight(0, 1), Some(0.9));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// One (u, v, w) record per *directed* arc accumulated so far.
    arcs: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over vertex ids `0..num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "vertex ids are u32; {num_vertices} vertices requested"
        );
        GraphBuilder {
            num_vertices,
            arcs: Vec::new(),
        }
    }

    /// Pre-reserves room for `edges` undirected edges.
    pub fn with_capacity(num_vertices: usize, edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.arcs.reserve(edges * 2);
        b
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds an undirected edge, panicking on invalid input.
    /// Use [`GraphBuilder::try_add_edge`] for fallible insertion.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.try_add_edge(u, v, w).expect("invalid edge");
    }

    /// Adds an undirected unit-weight edge.
    pub fn add_unweighted_edge(&mut self, u: VertexId, v: VertexId) {
        self.add_edge(u, v, 1.0);
    }

    /// Fallible edge insertion; self-loops are accepted and ignored.
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), GraphError> {
        let n = self.num_vertices as u64;
        if (u as u64) >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u as u64,
                num_vertices: n,
            });
        }
        if (v as u64) >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: n,
            });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::InvalidWeight { u, v, weight: w });
        }
        if u == v {
            return Ok(()); // canonical self-loop added in build()
        }
        self.arcs.push((u, v, w));
        self.arcs.push((v, u, w));
        Ok(())
    }

    /// Number of arcs (2× accepted edges) accumulated so far, before dedup.
    pub fn pending_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Consumes the builder and produces the CSR graph.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;
        // Append the canonical self-loops so the counting sort below places
        // them alongside ordinary arcs.
        self.arcs.reserve(n);
        for v in 0..n as VertexId {
            self.arcs.push((v, v, CsrGraph::SELF_LOOP_WEIGHT));
        }

        // Counting sort by source vertex: O(arcs + n), cache-friendlier than
        // a comparison sort on the tuples for large graphs.
        let mut counts = vec![0usize; n + 1];
        for &(u, _, _) in &self.arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut by_src: Vec<(VertexId, Weight)> = vec![(0, 0.0); self.arcs.len()];
        {
            let mut cursor = counts.clone();
            for &(u, v, w) in &self.arcs {
                let slot = cursor[u as usize];
                by_src[slot] = (v, w);
                cursor[u as usize] += 1;
            }
        }
        drop(self.arcs);

        // Per-vertex: sort by neighbor id, deduplicate keeping max weight.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(by_src.len());
        let mut weights: Vec<Weight> = Vec::with_capacity(by_src.len());
        offsets.push(0);
        for v in 0..n {
            let slice = &mut by_src[counts[v]..counts[v + 1]];
            slice.sort_unstable_by_key(|&(id, _)| id);
            let mut i = 0;
            while i < slice.len() {
                let id = slice[i].0;
                let mut w = slice[i].1;
                let mut j = i + 1;
                while j < slice.len() && slice[j].0 == id {
                    if slice[j].1 > w {
                        w = slice[j].1;
                    }
                    j += 1;
                }
                neighbors.push(id);
                weights.push(w);
                i = j;
            }
            offsets.push(neighbors.len());
        }

        let num_edges = (neighbors.len() - n) as u64 / 2;
        let g = CsrGraph::from_parts(offsets, neighbors, weights, num_edges);
        debug_assert!(g.check_invariants().is_ok(), "builder produced invalid CSR");
        g
    }

    /// Convenience: builds a graph directly from an edge list.
    pub fn from_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Result<CsrGraph, GraphError> {
        let mut b = GraphBuilder::new(num_vertices);
        for (u, v, w) in edges {
            b.try_add_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// Convenience: builds an unweighted (all weights 1.0) graph.
    pub fn from_unweighted_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<CsrGraph, GraphError> {
        GraphBuilder::from_edges(num_vertices, edges.into_iter().map(|(u, v)| (u, v, 1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrizes_and_sorts() {
        let g = GraphBuilder::from_edges(4, vec![(2, 0, 1.0), (3, 1, 0.5), (1, 0, 2.0)]).unwrap();
        assert_eq!(g.neighbor_ids(0), &[0, 1, 2]);
        assert_eq!(g.edge_weight(1, 3), Some(0.5));
        assert_eq!(g.edge_weight(3, 1), Some(0.5));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn duplicate_edges_keep_max_weight_regardless_of_order() {
        let a = GraphBuilder::from_edges(2, vec![(0, 1, 0.3), (0, 1, 0.8)]).unwrap();
        let b = GraphBuilder::from_edges(2, vec![(1, 0, 0.8), (0, 1, 0.3)]).unwrap();
        assert_eq!(a.edge_weight(0, 1), Some(0.8));
        assert_eq!(a, b);
        assert_eq!(a.num_edges(), 1);
    }

    #[test]
    fn input_self_loops_ignored() {
        let g = GraphBuilder::from_edges(2, vec![(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        // The canonical self-loop weight wins, not the supplied 5.0.
        assert_eq!(g.edge_weight(0, 0), Some(1.0));
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.try_add_edge(0, 2, 1.0),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            b.try_add_edge(7, 0, 1.0),
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::new(2);
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.try_add_edge(0, 1, w),
                Err(GraphError::InvalidWeight { .. })
            ));
        }
    }

    #[test]
    fn unweighted_convenience() {
        let g = GraphBuilder::from_unweighted_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn build_is_deterministic_under_permutation() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 0.5),
            (2, 3, 2.0),
            (3, 0, 0.25),
            (0, 2, 0.75),
        ];
        let g1 = GraphBuilder::from_edges(4, edges.clone()).unwrap();
        let mut rev = edges;
        rev.reverse();
        let g2 = GraphBuilder::from_edges(4, rev).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn large_star_graph() {
        let n = 10_000u32;
        let mut b = GraphBuilder::with_capacity(n as usize, n as usize - 1);
        for v in 1..n {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        assert_eq!(g.degree(0), n as usize);
        assert_eq!(g.num_edges(), n as u64 - 1);
        g.check_invariants().unwrap();
    }
}
