//! A mutable adjacency-map graph for dynamic workloads.
//!
//! [`crate::CsrGraph`] is immutable by design (the SCAN kernels want frozen,
//! sorted arrays); `AdjGraph` is its editable counterpart used by the
//! incremental clustering extension: ordered per-vertex maps, O(log d)
//! edge insertion/removal, cheap conversion to/from CSR. The closed-
//! neighborhood convention (implicit self-loop of weight 1) is preserved:
//! [`AdjGraph::degree`] counts the vertex itself and [`AdjGraph::norm_sq`]
//! includes the self term, so similarity code sees the same numbers either
//! way.

use std::collections::BTreeMap;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId, Weight};

/// An editable undirected weighted graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdjGraph {
    /// Per-vertex neighbor → weight (self-loop NOT stored; it is implicit).
    adj: Vec<BTreeMap<VertexId, Weight>>,
    num_edges: u64,
}

impl AdjGraph {
    /// An edgeless graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        AdjGraph {
            adj: vec![BTreeMap::new(); n],
            num_edges: 0,
        }
    }

    /// Imports a CSR graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut out = AdjGraph::new(g.num_vertices());
        for (u, v, w) in g.edges() {
            out.adj[u as usize].insert(v, w);
            out.adj[v as usize].insert(u, w);
        }
        out.num_edges = g.num_edges();
        out
    }

    /// Freezes into a CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.adj.len(), self.num_edges as usize);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for (&v, &w) in nbrs {
                if v as usize > u {
                    b.add_edge(u as VertexId, v, w);
                }
            }
        }
        b.build()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges (self-loops excluded).
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Appends an isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(BTreeMap::new());
        (self.adj.len() - 1) as VertexId
    }

    /// Inserts (or reweights) the undirected edge `(u, v)`; returns the
    /// previous weight if the edge existed. Self-loops are rejected.
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Result<Option<Weight>, GraphError> {
        let n = self.adj.len() as u64;
        if (u as u64) >= n || (v as u64) >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v) as u64,
                num_vertices: n,
            });
        }
        if u == v {
            return Err(GraphError::InvalidWeight { u, v, weight: w });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::InvalidWeight { u, v, weight: w });
        }
        let prev = self.adj[u as usize].insert(v, w);
        self.adj[v as usize].insert(u, w);
        if prev.is_none() {
            self.num_edges += 1;
        }
        Ok(prev)
    }

    /// Removes the edge `(u, v)`; returns its weight if present.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u as usize >= self.adj.len() || v as usize >= self.adj.len() || u == v {
            return None;
        }
        let w = self.adj[u as usize].remove(&v)?;
        self.adj[v as usize].remove(&u);
        self.num_edges -= 1;
        Some(w)
    }

    /// Weight of `(u, v)`; `Some(1.0)` for `u == v` (the implicit
    /// self-loop), `None` for absent edges or out-of-range vertices.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return None;
        }
        if u == v {
            return Some(CsrGraph::SELF_LOOP_WEIGHT);
        }
        self.adj[u as usize].get(&v).copied()
    }

    /// Closed degree `|Γ(v)|` (counts `v` itself).
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len() + 1
    }

    /// Iterator over open-neighborhood `(neighbor, weight)` pairs in id
    /// order (self excluded).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.adj[v as usize].iter().map(|(&q, &w)| (q, w))
    }

    /// `l_v = 1 + Σ w²` — the Lemma-5 norm with the implicit self-loop.
    pub fn norm_sq(&self, v: VertexId) -> Weight {
        1.0 + self.adj[v as usize].values().map(|w| w * w).sum::<Weight>()
    }

    /// Weighted structural similarity over the dynamic representation,
    /// identical in value to the CSR kernel's σ (closed neighborhoods):
    /// iterates the smaller neighborhood, probes the larger.
    pub fn sigma(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 1.0;
        }
        let (small, large) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        let large_map = &self.adj[large as usize];
        let mut num = 0.0;
        // Common plain neighbors.
        for (&r, &w_s) in &self.adj[small as usize] {
            if r == large {
                continue; // handled by the self-loop terms below
            }
            if let Some(&w_l) = large_map.get(&r) {
                num += w_s * w_l;
            }
        }
        // Self-loop terms: r = u contributes w_uu·w_vu, r = v contributes
        // w_uv·w_vv — both present iff (u, v) is an edge.
        if let Some(&w_uv) = self.adj[u as usize].get(&v) {
            num += 2.0 * w_uv * 1.0;
        }
        num / (self.norm_sq(u) * self.norm_sq(v)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{erdos_renyi, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive reference σ over the CSR representation (closed
    /// neighborhoods), independent of both implementations under test.
    fn sigma_reference(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let mut num = 0.0;
        for (r, wu) in g.neighbors(u) {
            if let Some(wv) = g.edge_weight(v, r) {
                num += wu * wv;
            }
        }
        let l = |x: VertexId| g.neighbors(x).map(|(_, w)| w * w).sum::<f64>();
        num / (l(u) * l(v)).sqrt()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = AdjGraph::new(4);
        assert_eq!(g.insert_edge(0, 1, 0.5).unwrap(), None);
        assert_eq!(g.insert_edge(1, 0, 0.8).unwrap(), Some(0.5)); // reweight
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(0.8));
        assert_eq!(g.remove_edge(0, 1), Some(0.8));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.remove_edge(0, 1), None);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = AdjGraph::new(2);
        assert!(g.insert_edge(0, 0, 1.0).is_err());
        assert!(g.insert_edge(0, 5, 1.0).is_err());
        assert!(g.insert_edge(0, 1, -1.0).is_err());
        assert!(g.insert_edge(0, 1, f64::NAN).is_err());
    }

    #[test]
    fn csr_roundtrip_preserves_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let csr = erdos_renyi(&mut rng, 120, 700, WeightModel::uniform_default());
        let adj = AdjGraph::from_csr(&csr);
        assert_eq!(adj.num_edges(), csr.num_edges());
        assert_eq!(adj.to_csr(), csr);
    }

    #[test]
    fn sigma_matches_csr_kernel() {
        let mut rng = StdRng::seed_from_u64(12);
        let csr = erdos_renyi(&mut rng, 80, 500, WeightModel::uniform_default());
        let adj = AdjGraph::from_csr(&csr);
        for u in csr.vertices() {
            for &v in csr.neighbor_ids(u) {
                let a = adj.sigma(u, v);
                let b = sigma_reference(&csr, u, v);
                assert!((a - b).abs() < 1e-12, "σ({u},{v}): adj {a} vs csr {b}");
            }
        }
    }

    #[test]
    fn degree_and_norms_include_self() {
        let mut g = AdjGraph::new(3);
        g.insert_edge(0, 1, 2.0).unwrap();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 1);
        assert!((g.norm_sq(0) - 5.0).abs() < 1e-12); // 1 + 4
        assert!((g.norm_sq(2) - 1.0).abs() < 1e-12);
        assert_eq!(g.edge_weight(2, 2), Some(1.0));
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = AdjGraph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        g.insert_edge(0, v, 1.0).unwrap();
        assert_eq!(g.to_csr().num_vertices(), 2);
    }

    #[test]
    fn sigma_of_adjacent_vs_non_adjacent() {
        let mut g = AdjGraph::new(3);
        g.insert_edge(0, 1, 1.0).unwrap();
        g.insert_edge(1, 2, 1.0).unwrap();
        // 0 and 2 share only vertex 1.
        let s = g.sigma(0, 2);
        // num = w_01·w_21 = 1; l_0 = 2, l_2 = 2 → 0.5.
        assert!((s - 0.5).abs() < 1e-12, "σ(0,2) = {s}");
        assert_eq!(g.sigma(1, 1), 1.0);
    }
}
