//! Weighted undirected graphs for structural graph clustering.
//!
//! This crate provides the graph substrate used by the anySCAN reproduction:
//!
//! * [`CsrGraph`] — a compact, immutable compressed-sparse-row representation
//!   of an undirected weighted graph with *closed* neighborhoods (every vertex
//!   carries a self-loop of weight 1.0), which is exactly the neighborhood
//!   notion SCAN-family algorithms operate on.
//! * [`GraphBuilder`] — an edge-at-a-time builder that symmetrizes,
//!   deduplicates and sorts adjacency lists.
//! * [`io`] — plain-text edge-list and compact binary loaders/savers.
//! * [`gen`] — deterministic synthetic generators (Erdős–Rényi,
//!   planted-partition/SBM, LFR-style benchmark graphs with tunable average
//!   degree and clustering coefficient, R-MAT/Kronecker).
//! * [`stats`] — exact degree / triangle / clustering-coefficient statistics
//!   matching the columns of Tables I and II of the paper.
//! * [`traversal`] — BFS and connected-component utilities.
//! * [`reorder`] — cache-locality vertex reorderings (degree-descending,
//!   BFS/Cuthill–McKee) with a [`VertexPermutation`] that round-trips labels
//!   back to original vertex ids.
//!
//! # Example
//!
//! ```
//! use anyscan_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 0.5);
//! b.add_edge(2, 3, 2.0);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! // Closed neighborhoods: vertex 1 sees {0, 1, 2}.
//! let n: Vec<u32> = g.neighbors(1).map(|(v, _)| v).collect();
//! assert_eq!(n, vec![0, 1, 2]);
//! ```

pub mod adj;
pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod kcore;
pub mod reorder;
pub mod stats;
pub mod transform;
pub mod traversal;
pub mod types;

pub use adj::AdjGraph;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use reorder::{ReorderMode, VertexPermutation};
pub use types::{EdgeId, GraphError, VertexId, Weight};
