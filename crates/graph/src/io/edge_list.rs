//! Plain-text edge lists.
//!
//! The reader accepts the format used by the SNAP datasets the paper
//! evaluates on: one `u v [w]` triple per line, whitespace separated,
//! `#`-prefixed comment lines ignored. A missing weight defaults to 1.0
//! (the datasets of Table I are unweighted; the paper assigns weights
//! separately, as does [`crate::gen::weights`]).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};

/// Reads an edge list. `num_vertices` is inferred as `max id + 1` unless a
/// larger hint is supplied.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_vertices_hint: Option<usize>,
) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    let mut max_id: u64 = 0;
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx as u64 + 1;
        let line = line?;
        let body = line.trim();
        if body.is_empty() || body.starts_with('#') || body.starts_with('%') {
            continue;
        }
        let mut it = body.split_whitespace();
        let u: u64 = parse_field(it.next(), line_no, "source vertex")?;
        let v: u64 = parse_field(it.next(), line_no, "target vertex")?;
        let w: f64 = match it.next() {
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("bad weight {tok:?}"),
            })?,
            None => 1.0,
        };
        // Reject NaN / infinite / non-positive weights here, where the line
        // number is still known (the builder would catch them later, but
        // without file context).
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("invalid weight {w}: must be finite and > 0"),
            });
        }
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: line_no,
                message: "vertex id exceeds u32".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let n = num_vertices_hint.map_or(inferred, |h| h.max(inferred));
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        if u != v {
            b.try_add_edge(u, v, w)?;
        }
    }
    Ok(b.build())
}

fn parse_field(tok: Option<&str>, line: u64, what: &str) -> Result<u64, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("bad {what} {tok:?}"),
    })
}

/// Writes the graph as a `u v w` edge list (each undirected edge once,
/// self-loops omitted), preceded by a stats comment header.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# vertices {} edges {}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, w) in g.edges() {
        writeln!(out, "{u} {v} {w}")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_weights_and_defaults() {
        let text = "# a comment\n0 1\n1 2 0.5\n\n% another comment\n2 0 2.0\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(0.5));
        assert_eq!(g.edge_weight(2, 0), Some(2.0));
    }

    #[test]
    fn hint_extends_vertex_count() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn self_loops_in_input_are_dropped() {
        let g = read_edge_list("0 0 3.0\n0 1\n".as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1\nx 2\n".as_bytes(), None).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
        let err = read_edge_list("0\n".as_bytes(), None).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("0 1 heavy\n".as_bytes(), None).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_nonpositive_and_nonfinite_weights_with_line_numbers() {
        for bad in ["NaN", "inf", "-1.5", "0", "-0.0"] {
            let text = format!("0 1\n1 2 {bad}\n");
            let err = read_edge_list(text.as_bytes(), None).unwrap_err();
            assert!(
                matches!(err, GraphError::Parse { line: 2, .. }),
                "weight {bad:?} gave {err}"
            );
        }
    }

    #[test]
    fn roundtrip() {
        let g = crate::GraphBuilder::from_edges(
            5,
            vec![(0, 1, 0.25), (1, 2, 1.0), (3, 4, 2.5), (0, 4, 0.125)],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), Some(5)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("# nothing\n".as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
