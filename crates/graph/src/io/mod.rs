//! Graph serialization: text edge lists (SNAP-compatible) and a compact
//! binary CSR format for fast reload of generated benchmark graphs.

pub mod binary;
pub mod edge_list;
pub mod framing;
pub mod metis;

pub use binary::{read_binary, write_binary};
pub use edge_list::{read_edge_list, write_edge_list};
pub use metis::{read_metis, write_metis};
