//! Shared framing for the workspace's binary formats.
//!
//! Both the CSR graph format (`"ASCN"`, [`super::binary`]) and the
//! similarity-index format (`"ASIX"`, in `anyscan-index`) are a 4-byte
//! magic, a little-endian `u32` version, and typed little-endian arrays.
//! This module holds the header and array plumbing so every format
//! validates truncation and versioning identically.

pub use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::types::GraphError;

/// Errors unless at least `n` bytes remain in `buf`.
pub fn need(buf: &Bytes, n: usize) -> Result<(), GraphError> {
    if buf.remaining() < n {
        Err(GraphError::Format("truncated file".into()))
    } else {
        Ok(())
    }
}

/// Writes the `magic` + version header.
pub fn put_header(buf: &mut BytesMut, magic: &[u8; 4], version: u32) {
    buf.put_slice(magic);
    buf.put_u32_le(version);
}

/// Reads and checks the `magic` + version header; errors on a foreign magic
/// or a version other than `expect_version`.
pub fn get_header(buf: &mut Bytes, magic: &[u8; 4], expect_version: u32) -> Result<(), GraphError> {
    let version = get_header_versioned(buf, magic, expect_version..=expect_version)?;
    debug_assert_eq!(version, expect_version);
    Ok(())
}

/// Reads and checks the `magic` + version header, accepting any version in
/// `accept` (tolerant readers for version-bumped formats). Returns the
/// version actually found.
pub fn get_header_versioned(
    buf: &mut Bytes,
    magic: &[u8; 4],
    accept: std::ops::RangeInclusive<u32>,
) -> Result<u32, GraphError> {
    need(buf, 8)?;
    let mut found = [0u8; 4];
    buf.copy_to_slice(&mut found);
    if &found != magic {
        return Err(GraphError::Format(format!("bad magic {found:?}")));
    }
    let version = buf.get_u32_le();
    if !accept.contains(&version) {
        return Err(GraphError::Format(format!("unsupported version {version}")));
    }
    Ok(version)
}

/// Reads the header version without consuming anything; errors on a foreign
/// magic or truncation. Lets a reader decide whether a checksum trailer is
/// present before parsing the body.
pub fn peek_version(raw: &[u8], magic: &[u8; 4]) -> Result<u32, GraphError> {
    if raw.len() < 8 {
        return Err(GraphError::Format("truncated file".into()));
    }
    if &raw[..4] != magic {
        return Err(GraphError::Format(format!("bad magic {:?}", &raw[..4])));
    }
    Ok(u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]))
}

/// Byte length of the FNV-1a checksum trailer.
pub const CHECKSUM_LEN: usize = 8;

/// Incremental 64-bit FNV-1a hasher (the checksum used by trailers; also
/// usable for structural fingerprints).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// 64-bit FNV-1a of `bytes` in one shot.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Appends the checksum trailer: FNV-1a over everything already in `buf`.
pub fn put_checksum_trailer(buf: &mut BytesMut) {
    let h = fnv1a(buf);
    buf.put_u64_le(h);
}

/// Verifies and strips the checksum trailer from a whole-file byte vector,
/// returning the payload (header included) for parsing. Catches torn/short
/// writes and bit corruption anywhere in the file.
pub fn strip_checksum_trailer(raw: Vec<u8>) -> Result<Bytes, GraphError> {
    if raw.len() < CHECKSUM_LEN {
        return Err(GraphError::Format("truncated file".into()));
    }
    let split = raw.len() - CHECKSUM_LEN;
    let expect = u64::from_le_bytes(raw[split..].try_into().expect("8-byte trailer"));
    let mut payload = raw;
    payload.truncate(split);
    let actual = fnv1a(&payload);
    if actual != expect {
        return Err(GraphError::Format(format!(
            "checksum mismatch: file says {expect:#018x}, computed {actual:#018x} \
             (torn write or corruption)"
        )));
    }
    Ok(Bytes::from(payload))
}

/// Writes `values` as little-endian u64s (usizes widen losslessly).
pub fn put_usize_array(buf: &mut BytesMut, values: &[usize]) {
    for &v in values {
        buf.put_u64_le(v as u64);
    }
}

/// Reads `len` little-endian u64s as usizes, checking truncation first.
pub fn get_usize_array(buf: &mut Bytes, len: usize) -> Result<Vec<usize>, GraphError> {
    need(buf, len * 8)?;
    Ok((0..len).map(|_| buf.get_u64_le() as usize).collect())
}

/// Writes `values` as little-endian u32s.
pub fn put_u32_array(buf: &mut BytesMut, values: &[u32]) {
    for &v in values {
        buf.put_u32_le(v);
    }
}

/// Reads `len` little-endian u32s, checking truncation first.
pub fn get_u32_array(buf: &mut Bytes, len: usize) -> Result<Vec<u32>, GraphError> {
    need(buf, len * 4)?;
    Ok((0..len).map(|_| buf.get_u32_le()).collect())
}

/// Writes `values` as little-endian f64s.
pub fn put_f64_array(buf: &mut BytesMut, values: &[f64]) {
    for &v in values {
        buf.put_f64_le(v);
    }
}

/// Reads `len` little-endian f64s, checking truncation first.
pub fn get_f64_array(buf: &mut Bytes, len: usize) -> Result<Vec<f64>, GraphError> {
    need(buf, len * 8)?;
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

/// Validates a CSR-style offset array: starts at 0, monotone non-decreasing,
/// and ends exactly at `total`.
pub fn check_offsets(offsets: &[usize], total: usize, what: &str) -> Result<(), GraphError> {
    if offsets.first() != Some(&0) {
        return Err(GraphError::Format(format!(
            "{what}: offsets must start at 0"
        )));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] || w[1] > total {
            return Err(GraphError::Format(format!(
                "{what}: non-monotone or out-of-range offset"
            )));
        }
    }
    if offsets.last() != Some(&total) {
        return Err(GraphError::Format(format!(
            "{what}: offsets end at {:?}, expected {total}",
            offsets.last()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_rejection() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, b"TEST", 3);
        let raw: Vec<u8> = buf.into();

        let mut b = Bytes::from(raw.clone());
        get_header(&mut b, b"TEST", 3).unwrap();

        let mut b = Bytes::from(raw.clone());
        assert!(get_header(&mut b, b"ELSE", 3).is_err());

        let mut b = Bytes::from(raw.clone());
        assert!(get_header(&mut b, b"TEST", 4).is_err());

        let mut short = Bytes::from(&raw[..2]);
        assert!(get_header(&mut short, b"TEST", 3).is_err());
    }

    #[test]
    fn arrays_roundtrip_and_catch_truncation() {
        let mut buf = BytesMut::new();
        put_usize_array(&mut buf, &[0, 3, 7]);
        put_u32_array(&mut buf, &[1, 2]);
        put_f64_array(&mut buf, &[0.5, -1.25]);
        let raw: Vec<u8> = buf.into();

        let mut b = Bytes::from(raw.clone());
        assert_eq!(get_usize_array(&mut b, 3).unwrap(), vec![0, 3, 7]);
        assert_eq!(get_u32_array(&mut b, 2).unwrap(), vec![1, 2]);
        assert_eq!(get_f64_array(&mut b, 2).unwrap(), vec![0.5, -1.25]);
        assert_eq!(b.remaining(), 0);

        let mut cut = Bytes::from(&raw[..raw.len() - 1]);
        assert!(get_usize_array(&mut cut, 3).is_ok());
        assert!(get_u32_array(&mut cut, 2).is_ok());
        assert!(get_f64_array(&mut cut, 2).is_err());
    }

    #[test]
    fn versioned_header_and_peek() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, b"TEST", 2);
        let raw: Vec<u8> = buf.into();

        assert_eq!(peek_version(&raw, b"TEST").unwrap(), 2);
        assert!(peek_version(&raw, b"ELSE").is_err());
        assert!(peek_version(&raw[..5], b"TEST").is_err());

        let mut b = Bytes::from(raw.clone());
        assert_eq!(get_header_versioned(&mut b, b"TEST", 1..=2).unwrap(), 2);
        let mut b = Bytes::from(raw.clone());
        assert!(get_header_versioned(&mut b, b"TEST", 3..=4).is_err());
    }

    #[test]
    fn checksum_trailer_roundtrip_and_corruption() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, b"TEST", 2);
        put_u32_array(&mut buf, &[1, 2, 3]);
        put_checksum_trailer(&mut buf);
        let raw: Vec<u8> = buf.into();

        let payload = strip_checksum_trailer(raw.clone()).unwrap();
        assert_eq!(payload.remaining(), raw.len() - CHECKSUM_LEN);

        // Any single-bit flip is caught, in payload or trailer alike.
        for byte in 0..raw.len() {
            let mut bad = raw.clone();
            bad[byte] ^= 0x10;
            assert!(strip_checksum_trailer(bad).is_err(), "flip at byte {byte}");
        }
        // Truncation (torn write) is caught.
        for cut in 0..raw.len() {
            assert!(strip_checksum_trailer(raw[..cut].to_vec()).is_err());
        }
    }

    #[test]
    fn offset_validation() {
        check_offsets(&[0, 2, 5], 5, "t").unwrap();
        assert!(check_offsets(&[1, 2, 5], 5, "t").is_err());
        assert!(check_offsets(&[0, 6, 5], 5, "t").is_err());
        assert!(check_offsets(&[0, 2, 4], 5, "t").is_err());
    }
}
