//! Compact binary CSR serialization.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   "ASCN"            4 bytes
//! version u32               currently 2
//! n       u64               number of vertices
//! arcs    u64               length of the neighbor/weight arrays
//! edges   u64               undirected edge count (excl. self-loops)
//! offsets (n+1) × u64
//! neighbors arcs × u32
//! weights  arcs × f64
//! checksum u64              v2+: FNV-1a over all preceding bytes
//! ```
//!
//! Generated benchmark graphs are cached in this format so repeated
//! experiment runs skip regeneration.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use super::framing;
use crate::csr::CsrGraph;
use crate::types::GraphError;

const MAGIC: &[u8; 4] = b"ASCN";
const VERSION: u32 = 2;
/// Oldest version still readable (v1 files predate the checksum trailer).
const MIN_VERSION: u32 = 1;

/// Serializes a graph to the binary CSR format (current version, with a
/// checksum trailer).
pub fn write_binary<W: Write>(g: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    anyscan_faults::inject_io("graph::write_binary")?;
    let (offsets, neighbors, weights, num_edges) = g.raw_parts();
    let mut buf = BytesMut::with_capacity(
        4 + 4 + 24 + offsets.len() * 8 + neighbors.len() * 4 + weights.len() * 8 + 8,
    );
    framing::put_header(&mut buf, MAGIC, VERSION);
    buf.put_u64_le((offsets.len() - 1) as u64);
    buf.put_u64_le(neighbors.len() as u64);
    buf.put_u64_le(num_edges);
    framing::put_usize_array(&mut buf, offsets);
    framing::put_u32_array(&mut buf, neighbors);
    framing::put_f64_array(&mut buf, weights);
    framing::put_checksum_trailer(&mut buf);
    let mut out: Vec<u8> = buf.into();
    anyscan_faults::inject_write("graph::write_binary", &mut out)?;
    writer.write_all(&out)?;
    Ok(())
}

/// Deserializes a graph written by [`write_binary`], re-validating all CSR
/// invariants (the file may come from an untrusted build cache). v2 files
/// are checksum-verified; v1 files (no trailer) still load with a warning.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, GraphError> {
    anyscan_faults::inject_io("graph::read_binary")?;
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = match framing::peek_version(&raw, MAGIC)? {
        1 => {
            eprintln!("warning: ASCN v1 file has no checksum trailer; rewrite it to upgrade");
            Bytes::from(raw)
        }
        _ => framing::strip_checksum_trailer(raw)?,
    };

    framing::get_header_versioned(&mut buf, MAGIC, MIN_VERSION..=VERSION)?;
    framing::need(&buf, 24)?;
    let n = buf.get_u64_le() as usize;
    let arcs = buf.get_u64_le() as usize;
    let num_edges = buf.get_u64_le();

    let offsets = framing::get_usize_array(&mut buf, n + 1)?;
    let neighbors = framing::get_u32_array(&mut buf, arcs)?;
    let weights = framing::get_f64_array(&mut buf, arcs)?;
    // Bounds-check offsets *before* constructing the graph: `from_parts`
    // slices the weight array by them to precompute the Lemma-5 norms, so a
    // corrupted offset would otherwise panic instead of erroring.
    framing::check_offsets(&offsets, arcs, "csr")?;
    let g = CsrGraph::from_parts(offsets, neighbors, weights, num_edges);
    g.check_invariants().map_err(GraphError::Format)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 0.5),
                (1, 2, 1.5),
                (2, 3, 1.0),
                (4, 5, 0.25),
                (0, 5, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        for cut in [3, 7, 20, buf.len() / 2, buf.len() - 1] {
            let err = read_binary(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::Format(_)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn rejects_corrupted_payload() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Flip a neighbor id deep in the payload to break symmetry.
        let idx = buf.len() - 9 * 8 - 2; // somewhere in the neighbors block
        buf[idx] ^= 0xFF;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn reads_legacy_v1_files_without_trailer() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Rewrite as a v1 file: drop the trailer, patch the version field.
        buf.truncate(buf.len() - framing::CHECKSUM_LEN);
        buf[4] = 1;
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_unknown_future_version() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[4] = 9;
        // Re-stamp the trailer so only the version check can object.
        buf.truncate(buf.len() - framing::CHECKSUM_LEN);
        let h = framing::fnv1a(&buf);
        buf.extend_from_slice(&h.to_le_bytes());
        assert!(matches!(
            read_binary(buf.as_slice()),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }
}
