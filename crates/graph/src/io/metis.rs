//! METIS graph-file format.
//!
//! The de-facto interchange format of the graph-partitioning world (and of
//! many clustering toolkits). Layout:
//!
//! ```text
//! % comment lines
//! <n> <m> [fmt]          # header: vertices, edges, optional format code
//! <v1> [w1] <v2> [w2] …  # one line per vertex, neighbors 1-indexed;
//!                        # with fmt=001 each neighbor carries a weight
//! ```
//!
//! We support fmt `0`/absent (unweighted) and `001` (edge weights). Vertex
//! weights (`01x`/`1xx`) are rejected explicitly rather than misparsed.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};

/// Reads a METIS file.
pub fn read_metis<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    // Header: first non-comment line.
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                let body = line.trim();
                if body.is_empty() || body.starts_with('%') {
                    continue;
                }
                break (idx as u64 + 1, body.to_string());
            }
            None => {
                return Err(GraphError::Parse {
                    line: 0,
                    message: "missing METIS header".into(),
                })
            }
        }
    };
    let mut it = header.split_whitespace();
    let n: usize = parse(it.next(), header_line_no, "vertex count")?;
    let m: u64 = parse(it.next(), header_line_no, "edge count")?;
    // Sanity-check the header before sizing any allocation by it: a
    // garbage header (e.g. a stray huge integer) used to drive
    // `with_capacity` straight into a capacity-overflow abort.
    if n > u32::MAX as usize {
        return Err(GraphError::Parse {
            line: header_line_no,
            message: format!("vertex count {n} exceeds u32 (malformed header?)"),
        });
    }
    let max_edges = n as u128 * n.saturating_sub(1) as u128 / 2;
    if m as u128 > max_edges {
        return Err(GraphError::Parse {
            line: header_line_no,
            message: format!("edge count {m} impossible for {n} vertices (malformed header?)"),
        });
    }
    let fmt = it.next().unwrap_or("0");
    let weighted = match fmt {
        "0" | "00" | "000" => false,
        "1" | "01" | "001" => true,
        other => {
            return Err(GraphError::Parse {
                line: header_line_no,
                message: format!("unsupported METIS fmt {other:?} (vertex weights not supported)"),
            })
        }
    };

    let mut b = GraphBuilder::with_capacity(n, m as usize);
    let mut vertex: VertexId = 0;
    for (idx, line) in lines {
        let line_no = idx as u64 + 1;
        let line = line?;
        let body = line.trim();
        if body.starts_with('%') {
            continue;
        }
        if vertex as usize >= n {
            if body.is_empty() {
                continue;
            }
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("more than {n} vertex lines"),
            });
        }
        let mut toks = body.split_whitespace();
        while let Some(tok) = toks.next() {
            let neighbor: u64 = tok.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("bad neighbor id {tok:?}"),
            })?;
            if neighbor == 0 || neighbor > n as u64 {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("neighbor {neighbor} out of 1..={n}"),
                });
            }
            let w: f64 = if weighted {
                let wt = toks.next().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "missing edge weight".into(),
                })?;
                wt.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("bad edge weight {wt:?}"),
                })?
            } else {
                1.0
            };
            if !w.is_finite() || w <= 0.0 {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("invalid edge weight {w}: must be finite and > 0"),
                });
            }
            let q = (neighbor - 1) as VertexId;
            // Each edge appears in both endpoint lines; the builder
            // deduplicates (max weight wins, so symmetric inputs are exact).
            if q != vertex {
                b.try_add_edge(vertex, q, w)?;
            }
        }
        vertex += 1;
    }
    if (vertex as usize) < n {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {n} vertex lines, found {vertex}"),
        });
    }
    let g = b.build();
    if g.num_edges() != m {
        return Err(GraphError::Parse {
            line: header_line_no,
            message: format!("header declares {m} edges, file encodes {}", g.num_edges()),
        });
    }
    Ok(g)
}

/// Writes a METIS file (always fmt `001`, weighted).
pub fn write_metis<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "% written by anyscan-graph")?;
    writeln!(out, "{} {} 001", g.num_vertices(), g.num_edges())?;
    for v in g.vertices() {
        let mut first = true;
        for (q, w) in g.neighbors(v) {
            if q == v {
                continue;
            }
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{} {}", q + 1, w)?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, line: u64, what: &str) -> Result<T, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("bad {what} {tok:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn reads_unweighted() {
        // Triangle 1-2-3 plus pendant 4 on 1 (METIS ids are 1-based).
        let text = "% tiny graph\n4 4\n2 3 4\n1 3\n1 2\n1\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(0, 3), Some(1.0));
        g.check_invariants().unwrap();
    }

    #[test]
    fn reads_weighted() {
        let text = "3 2 001\n2 0.5\n1 0.5 3 2.0\n2 2.0\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(0.5));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
    }

    #[test]
    fn roundtrip() {
        let g = GraphBuilder::from_edges(
            5,
            vec![(0, 1, 0.25), (1, 2, 1.0), (3, 4, 2.5), (0, 4, 0.125)],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn error_cases() {
        // Missing header.
        assert!(read_metis("% nothing\n".as_bytes()).is_err());
        // Vertex-weight formats rejected.
        assert!(read_metis("2 1 011\n2 1\n1 1\n".as_bytes()).is_err());
        // Neighbor out of range.
        assert!(read_metis("2 1\n3\n1\n".as_bytes()).is_err());
        // Neighbor id 0 (must be 1-based).
        assert!(read_metis("2 1\n0\n1\n".as_bytes()).is_err());
        // Too few vertex lines.
        assert!(read_metis("3 1\n2\n1\n".as_bytes()).is_err());
        // Edge count mismatch.
        assert!(read_metis("2 5\n2\n1\n".as_bytes()).is_err());
        // Missing weight in weighted format.
        assert!(read_metis("2 1 001\n2\n1 1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn malformed_headers_error_instead_of_aborting() {
        // Bomb headers: used to feed with_capacity and abort the process.
        let huge_n = format!("{} 1\n", u64::MAX);
        assert!(matches!(
            read_metis(huge_n.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        let huge_m = format!("4 {}\n\n\n\n\n", u64::MAX);
        assert!(matches!(
            read_metis(huge_m.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_nonpositive_and_nonfinite_weights() {
        for bad in ["NaN", "inf", "-2", "0"] {
            let text = format!("2 1 001\n2 {bad}\n1 {bad}\n");
            let err = read_metis(text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, GraphError::Parse { line: 2, .. }),
                "weight {bad:?} gave {err}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = read_metis("0 0\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        assert_eq!(read_metis(buf.as_slice()).unwrap(), g);
    }
}
