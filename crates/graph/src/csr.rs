//! Immutable compressed-sparse-row graph.

use crate::types::{EdgeId, VertexId, Weight};

/// An undirected weighted graph in compressed-sparse-row form with **closed**
/// neighborhoods: every vertex's adjacency list contains the vertex itself
/// with [`CsrGraph::SELF_LOOP_WEIGHT`].
///
/// SCAN defines the structural neighborhood `Γ(v) = {u | (v,u) ∈ E} ∪ {v}`;
/// materializing the self-loop turns every structural-similarity evaluation
/// into a plain sorted merge-join over two adjacency slices, with no special
/// cases. [`CsrGraph::degree`] therefore counts the vertex itself, matching
/// `|Γ(v)|` in the SCAN literature, while [`CsrGraph::open_degree`] gives the
/// conventional graph degree.
///
/// Adjacency lists are sorted by neighbor id and deduplicated. Per-vertex
/// Lemma-5 quantities (`l_p = Σ w², w_p = max w`) are precomputed at build
/// time so the O(1) similarity filter never touches the edge arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` delimits v's slice of `neighbors`/`weights`.
    offsets: Vec<EdgeId>,
    /// Flat adjacency array (includes the self-loop), sorted per vertex.
    neighbors: Vec<VertexId>,
    /// Weight of the corresponding arc in `neighbors`.
    weights: Vec<Weight>,
    /// Lemma 5: `l_p = Σ_{r∈N_p} w_pr²` (includes the self-loop).
    norm_sq: Vec<Weight>,
    /// Lemma 5: `w_p = max_{r∈N_p} w_pr` (includes the self-loop).
    max_weight: Vec<Weight>,
    /// Number of undirected edges, *excluding* self-loops.
    num_edges: u64,
}

impl CsrGraph {
    /// Weight assigned to the materialized self-loop of every vertex.
    ///
    /// With unit edge weights this makes Definition 1 reduce exactly to
    /// SCAN's unweighted cosine similarity over closed neighborhoods.
    pub const SELF_LOOP_WEIGHT: Weight = 1.0;

    /// Assembles a graph from raw CSR arrays. Callers must guarantee the CSR
    /// invariants (sorted, deduplicated, symmetric, self-loops present);
    /// [`crate::GraphBuilder`] is the supported way to construct graphs.
    pub(crate) fn from_parts(
        offsets: Vec<EdgeId>,
        neighbors: Vec<VertexId>,
        weights: Vec<Weight>,
        num_edges: u64,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), weights.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        let n = offsets.len().saturating_sub(1);
        let mut norm_sq = Vec::with_capacity(n);
        let mut max_weight = Vec::with_capacity(n);
        for v in 0..n {
            let (mut l, mut m) = (0.0, 0.0);
            for &w in &weights[offsets[v]..offsets[v + 1]] {
                l += w * w;
                if w > m {
                    m = w;
                }
            }
            norm_sq.push(l);
            max_weight.push(m);
        }
        CsrGraph {
            offsets,
            neighbors,
            weights,
            norm_sq,
            max_weight,
            num_edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges, excluding the materialized self-loops.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Closed degree `|Γ(v)|` (counts `v` itself).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Conventional (open) degree: number of distinct neighbors `≠ v`.
    #[inline]
    pub fn open_degree(&self, v: VertexId) -> usize {
        self.degree(v) - 1
    }

    /// Iterator over `(neighbor, weight)` pairs of the closed neighborhood,
    /// in increasing neighbor order (includes `(v, SELF_LOOP_WEIGHT)`).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        self.neighbors[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// The sorted closed-neighborhood id slice of `v`.
    #[inline]
    pub fn neighbor_ids(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights aligned with [`CsrGraph::neighbor_ids`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[Weight] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `l_v = Σ_{r∈Γ(v)} w_vr²` — the squared neighborhood norm of Lemma 5.
    #[inline]
    pub fn norm_sq(&self, v: VertexId) -> Weight {
        self.norm_sq[v as usize]
    }

    /// `w_v = max_{r∈Γ(v)} w_vr` — the maximum incident weight of Lemma 5.
    #[inline]
    pub fn max_weight(&self, v: VertexId) -> Weight {
        self.max_weight[v as usize]
    }

    /// True if `u` and `v` are adjacent (`u == v` counts: closed neighborhood).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbor_ids(u).binary_search(&v).is_ok()
    }

    /// Weight of the arc `(u,v)` if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let u_usize = u as usize;
        let slice = &self.neighbors[self.offsets[u_usize]..self.offsets[u_usize + 1]];
        slice
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[self.offsets[u_usize] + i])
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge `(u, v, w)` exactly once
    /// (`u < v`; self-loops are skipped).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Average open degree `2|E| / |V|` — the `d̄` column of Tables I/II.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.num_vertices() as f64
    }

    /// Raw CSR views for zero-copy serialization.
    pub(crate) fn raw_parts(&self) -> (&[EdgeId], &[VertexId], &[Weight], u64) {
        (
            &self.offsets,
            &self.neighbors,
            &self.weights,
            self.num_edges,
        )
    }

    /// Total number of stored arcs, including self-loops (2|E| + |V|).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Range of global arc indices owned by `v` (aligned with
    /// [`CsrGraph::neighbor_ids`]); lets callers maintain per-arc side
    /// tables (e.g. pSCAN's similarity verdict cache).
    #[inline]
    pub fn arc_range(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Assembles a graph from adjacency rows that already satisfy the CSR
    /// invariants (strictly sorted per vertex, symmetric, self-loops present,
    /// positive finite weights) — the shape a dynamic-update engine maintains
    /// natively, letting it publish a CSR snapshot without re-sorting.
    /// Invariants are re-validated; a violation is a typed `Err`, never a
    /// silently corrupt graph.
    pub fn from_sorted_rows(
        offsets: Vec<EdgeId>,
        neighbors: Vec<VertexId>,
        weights: Vec<Weight>,
        num_edges: u64,
    ) -> Result<CsrGraph, String> {
        if offsets.is_empty() {
            return Err("offsets must contain at least the trailing bound".into());
        }
        if neighbors.len() != weights.len() || *offsets.last().unwrap() != neighbors.len() {
            return Err("arc arrays disagree with offsets".into());
        }
        let g = CsrGraph::from_parts(offsets, neighbors, weights, num_edges);
        g.check_invariants()?;
        Ok(g)
    }

    /// Validates every CSR invariant; used by tests and the binary loader.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at {v}"));
            }
            let ids = self.neighbor_ids(v as VertexId);
            if ids.binary_search(&(v as VertexId)).is_err() {
                return Err(format!("vertex {v} lacks its self-loop"));
            }
            for w in ids.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {v} not strictly sorted"));
                }
            }
            for (u, w) in self.neighbors(v as VertexId) {
                if u as usize >= n {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if w <= 0.0 || !w.is_finite() {
                    return Err(format!("weight of ({v},{u}) invalid: {w}"));
                }
                if u as usize != v {
                    match self.edge_weight(u, v as VertexId) {
                        Some(back) if back == w => {}
                        Some(_) => return Err(format!("asymmetric weight on ({v},{u})")),
                        None => return Err(format!("missing reverse arc ({u},{v})")),
                    }
                }
            }
        }
        let arcs_excl_self = self.num_arcs() - n;
        if arcs_excl_self as u64 != 2 * self.num_edges {
            return Err(format!(
                "edge count mismatch: {} arcs (excl. self) vs num_edges={}",
                arcs_excl_self, self.num_edges
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle() -> super::CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 0.5);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 3); // closed degree: self + 2 neighbors
        assert_eq!(g.open_degree(0), 2);
        assert_eq!(g.num_arcs(), 9); // 2*3 arcs + 3 self-loops
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_present_with_unit_weight() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(g.edge_weight(v, v), Some(super::CsrGraph::SELF_LOOP_WEIGHT));
        }
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = triangle();
        let n: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n, vec![(0, 1.0), (1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 2), Some(0.5));
        assert_eq!(g.edge_weight(2, 0), Some(0.5));
        assert_eq!(g.edge_weight(0, 0), Some(1.0));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn norms_include_self_loop() {
        let g = triangle();
        // l_1 = 1 (self) + 1 (to 0) + 4 (to 2)
        assert!((g.norm_sq(1) - 6.0).abs() < 1e-12);
        assert!((g.max_weight(1) - 2.0).abs() < 1e-12);
        // Vertex with only weak edges: self-loop dominates max.
        assert!((g.max_weight(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_by_key(|&(u, v, _)| (u, v));
        assert_eq!(e, vec![(0, 1, 1.0), (0, 2, 0.5), (1, 2, 2.0)]);
    }

    #[test]
    fn from_sorted_rows_roundtrips_and_rejects() {
        let g = triangle();
        // Rebuild the triangle from its own rows: identical graph.
        let mut offsets = vec![0usize];
        for v in 0..3 {
            offsets.push(g.arc_range(v).end);
        }
        let neighbors: Vec<u32> = (0..3).flat_map(|v| g.neighbor_ids(v).to_vec()).collect();
        let weights: Vec<f64> = (0..3)
            .flat_map(|v| g.neighbor_weights(v).to_vec())
            .collect();
        let rebuilt =
            super::CsrGraph::from_sorted_rows(offsets, neighbors, weights, g.num_edges()).unwrap();
        assert_eq!(rebuilt, g);
        // Missing self-loop is rejected.
        assert!(super::CsrGraph::from_sorted_rows(vec![0, 1], vec![1], vec![1.0], 0).is_err());
        // Arc arrays disagreeing with offsets are rejected.
        assert!(super::CsrGraph::from_sorted_rows(vec![0, 2], vec![0], vec![1.0], 0).is_err());
    }

    #[test]
    fn invariants_hold() {
        triangle().check_invariants().unwrap();
    }

    #[test]
    fn empty_and_isolated() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.average_degree(), 0.0);

        let g = GraphBuilder::new(5).build(); // 5 isolated vertices
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 1); // just the self-loop
        }
        g.check_invariants().unwrap();
    }
}
