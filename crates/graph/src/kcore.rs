//! k-core decomposition (Matula–Beck peeling).
//!
//! Core numbers are a cheap structural companion to SCAN output: they bound
//! which vertices can ever be SCAN cores at a given μ (a SCAN core needs
//! μ−1 neighbors, so its open degree — and in dense regions its core
//! number — must be at least μ−1), and the examples use them to pick
//! interesting ε ranges.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Computes the core number of every vertex (open-degree based) with the
/// linear-time bucket peeling algorithm.
pub fn core_numbers(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n as VertexId)
        .map(|v| g.open_degree(v) as u32)
        .collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bin_starts = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin_starts[d as usize + 1] += 1;
    }
    for i in 0..=max_degree {
        bin_starts[i + 1] += bin_starts[i];
    }
    let mut position = vec![0usize; n];
    let mut ordered = vec![0 as VertexId; n];
    {
        let mut cursor = bin_starts.clone();
        for v in 0..n as VertexId {
            let d = degree[v as usize] as usize;
            position[v as usize] = cursor[d];
            ordered[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    // Peel in non-decreasing degree order, demoting neighbors in place.
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = ordered[i];
        core[v as usize] = degree[v as usize];
        for &u in g.neighbor_ids(v) {
            if u == v || degree[u as usize] <= degree[v as usize] {
                continue;
            }
            // Swap u to the front of its bucket, then shrink its degree.
            let du = degree[u as usize] as usize;
            let pu = position[u as usize];
            let pw = bin_starts[du];
            let w = ordered[pw];
            if u != w {
                ordered.swap(pu, pw);
                position[u as usize] = pw;
                position[w as usize] = pu;
            }
            bin_starts[du] += 1;
            degree[u as usize] -= 1;
        }
    }
    core
}

/// The degeneracy of the graph (the maximum core number).
pub fn degeneracy(g: &CsrGraph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Vertices of the `k`-core (core number ≥ k).
pub fn k_core_vertices(g: &CsrGraph, k: u32) -> Vec<VertexId> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c >= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn clique_core_numbers() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        assert_eq!(core_numbers(&g), vec![4; 5]);
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn path_core_numbers() {
        let g = GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn clique_with_pendants() {
        // Triangle {0,1,2}, pendants 3 (on 0) and 4 (on 3): core numbers
        // 2,2,2,1,1.
        let g =
            GraphBuilder::from_unweighted_edges(5, vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)])
                .unwrap();
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1, 1]);
        assert_eq!(k_core_vertices(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core_vertices(&g, 3), Vec::<VertexId>::new());
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn matches_naive_peeling_on_random_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let g = crate::gen::erdos_renyi(&mut rng, 200, 800, crate::gen::WeightModel::Unit);
        let fast = core_numbers(&g);
        // Naive: repeatedly remove min-degree vertex.
        let n = g.num_vertices();
        let mut deg: Vec<i64> = (0..n as u32).map(|v| g.open_degree(v) as i64).collect();
        let mut removed = vec![false; n];
        let mut naive = vec![0u32; n];
        let mut current_core = 0i64;
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| !removed[v])
                .min_by_key(|&v| deg[v])
                .unwrap();
            current_core = current_core.max(deg[v]);
            naive[v] = current_core as u32;
            removed[v] = true;
            for &u in g.neighbor_ids(v as u32) {
                if u as usize != v && !removed[u as usize] {
                    deg[u as usize] -= 1;
                }
            }
        }
        assert_eq!(fast, naive);
    }
}
