//! Offline drop-in for the subset of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`). Built
//! on [`std::sync::Mutex`]; poisoning is ignored, matching parking_lot's
//! panic-transparent behavior.

#![allow(clippy::all)]

use std::fmt;
use std::sync::Mutex as StdMutex;

pub use std::sync::MutexGuard;

/// Mutual exclusion without lock poisoning.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic while a previous
    /// holder held the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0); // not poisoned
    }
}
