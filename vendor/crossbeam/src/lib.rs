//! Offline drop-in for the subset of `crossbeam` 0.8 this workspace uses:
//! scoped threads. Since Rust 1.63 the standard library provides
//! [`std::thread::scope`]; this shim adapts it to crossbeam's call shape
//! (`scope(|s| ...)` returning a `Result`, spawn closures receiving the
//! scope).
//!
//! One behavioral difference: when a spawned thread panics and its handle is
//! never joined, the real crossbeam returns `Err` from `scope` while this
//! shim propagates the panic out of `scope` directly (std semantics). Every
//! caller in this workspace treats both identically (unwinding the test).

#![allow(clippy::all)]

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`] and to each spawn closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: derive would put bounds on the lifetimes' types.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread (join is optional; the scope joins at exit).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, `Err` on panic.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (for
        /// nested spawns), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_thread_result() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
