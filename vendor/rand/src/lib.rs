//! Offline drop-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the few primitives it needs: a seedable generator ([`rngs::StdRng`], here
//! xoshiro256** seeded through SplitMix64), uniform range sampling
//! ([`Rng::gen_range`]), standard-distribution draws ([`Rng::gen`]),
//! Bernoulli draws ([`Rng::gen_bool`]) and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]). The API shapes match rand 0.8 closely enough that
//! swapping the real crate back in is a one-line Cargo.toml change.
//!
//! Streams differ from the real `rand` (different PRNG), but every consumer
//! in this workspace only requires determinism for a fixed seed, which this
//! implementation guarantees.

#![allow(clippy::all)]

/// A random-number generator: one required method, everything else derived.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a value of a standard-distribution type: floats in `[0, 1)`,
    /// integers over their full range, fair booleans.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits to a double in `[0, 1)` (53-bit mantissa method).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer below `span` (widening-multiply method; the bias of
/// 2^-64·span is far below anything the workspace's statistical tests can
/// resolve).
#[inline]
fn below(rng_bits: u64, span: u64) -> u64 {
    ((rng_bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width u64/i64 range
                }
                lo.wrapping_add(below(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64 seed
    /// expansion. (The real `StdRng` is ChaCha12; consumers only rely on
    /// seeded determinism, not on the exact stream.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    /// Alias: the workspace has no need for a distinct small generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::Rng;

    /// Slice helpers driven by a generator.
    pub trait SliceRandom {
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn range_sampling_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive range includes its upper bound.
        let mut top = false;
        for _ in 0..1000 {
            top |= rng.gen_range(0..=3u32) == 3;
        }
        assert!(top);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.2)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.17..0.23).contains(&frac), "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left order unchanged"
        );
    }
}
