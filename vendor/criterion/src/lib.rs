//! Offline drop-in for the subset of the `criterion` API this workspace
//! uses: `benchmark_group` / `bench_function` / `Bencher::iter`, plus the
//! `criterion_group!` / `criterion_main!` macros and [`black_box`].
//!
//! Instead of criterion's full statistical pipeline, each benchmark is
//! calibrated to a per-sample iteration count, timed for `sample_size`
//! samples, and reported as min/median/mean to stdout — enough to compare
//! alternatives on one machine, which is how this workspace's benches are
//! read. Sample counts and measurement time honor the same knobs as the real
//! crate.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry/driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_one(
            &id.into(),
            self.default_sample_size,
            self.default_measurement_time,
            f,
        );
    }
}

/// A group sharing sample-size / measurement-time settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibration pass: find an iteration count giving samples that fit the
    // budget while being long enough to time reliably.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target_sample = (budget / samples as u32).max(Duration::from_micros(200));
    let iters = (target_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{id}: min {} | median {} | mean {}  ({} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        times.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
