//! Offline drop-in for the subset of the `bytes` crate this workspace uses:
//! little-endian put/get over growable ([`BytesMut`]) and consumable
//! ([`Bytes`]) byte buffers. Backed by `Vec<u8>` plus a read cursor — the
//! zero-copy machinery of the real crate is not needed by the binary CSR
//! codec, its only consumer here.

#![allow(clippy::all)]

use std::ops::Deref;

/// Read side: sequential consumption of a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Borrows the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, consuming them. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: sequential appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable write buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable consumable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Immutable buffer consumed front-to-back through [`Buf`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HEAD");
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(0.125);
        let mut r = Bytes::from(Vec::from(w));
        let mut head = [0u8; 4];
        r.copy_to_slice(&mut head);
        assert_eq!(&head, b"HEAD");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 0.125);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1u8, 2]);
        let _ = r.get_u32_le();
    }
}
