//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! Implements the [`proptest!`] macro, range/tuple/`Just`/`vec` strategies
//! with `prop_map`/`prop_flat_map`, and the `prop_assert*` macros, over a
//! deterministic per-test PRNG. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message of the underlying `assert!`) but is not minimized;
//! * **Deterministic seeding** — the case stream is a function of the test's
//!   module path and name, plus the optional `PROPTEST_SEED` environment
//!   variable for exploring alternative streams;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of recording
//!   a failure value.
//!
//! These keep every property test in the workspace meaningful (randomized,
//! reproducible, high case count) while remaining buildable offline.

#![allow(clippy::all)]

pub mod test_runner {
    /// Per-invocation configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 256 cases, overridable by the `PROPTEST_CASES` environment
        /// variable (same contract as the real crate; CI pins it so test
        /// time is predictable). An explicit `with_cases` always wins.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(256);
            Config { cases }
        }
    }
}

/// The deterministic generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// SplitMix64 over a seed derived from `label` (and `PROPTEST_SEED`).
    pub fn for_label(label: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a offset basis
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(x) = extra.trim().parse::<u64>() {
                seed ^= x.rotate_left(17);
            }
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derived strategy applying `f` to every draw.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Derived strategy feeding every draw through `f` into a second
        /// strategy (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    // Strategies borrowed by reference stay strategies (the vec combinator
    // and the macro both exploit this).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Constant strategy: every draw is a clone of the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector-of-`element` strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (&self.len).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `#[test]` function over `cases` random draws of its
/// `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::TestRng::for_label(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_default_reads_proptest_cases_env() {
        // Serialized within this one test: set, read, restore.
        let prev = std::env::var("PROPTEST_CASES").ok();
        std::env::set_var("PROPTEST_CASES", "64");
        assert_eq!(crate::test_runner::Config::default().cases, 64);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(crate::test_runner::Config::default().cases, 256);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(crate::test_runner::Config::default().cases, 256);
        match prev {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
        assert_eq!(crate::test_runner::Config::with_cases(8).cases, 8);
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_label("self-test");
        for _ in 0..1000 {
            let x = crate::strategy::Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = crate::strategy::Strategy::generate(&(0usize..4, 0.0f64..1.0), &mut rng);
            assert!(a < 4 && (0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::for_label("vec-test");
        let s = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, maps compose, asserts fire.
        #[test]
        fn macro_binds_arguments(
            n in 1usize..10,
            v in crate::collection::vec(0u32..100, 0..20),
            pair in (0u8..4).prop_map(|x| (x, x * 2)),
        ) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!(v.len() < 20);
            prop_assert_eq!(pair.1, pair.0 * 2);
        }

        #[test]
        fn flat_map_dependent_generation(
            (n, idx) in (1usize..20).prop_flat_map(|n| (Just(n), 0..n)),
        ) {
            prop_assert!(idx < n);
        }
    }
}
