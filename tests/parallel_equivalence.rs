//! Thread-count equivalence: the parallel driver must produce
//! SCAN-equivalent results for every thread count, DSU variant and block
//! size, and its counters must stay coherent.

use anyscan::{AnyScan, AnyScanConfig, DsuKind};
use anyscan_baselines::scan;
use anyscan_graph::gen::{lfr, planted_partition, LfrParams, PlantedPartitionParams, WeightModel};
use anyscan_scan_common::verify::assert_scan_equivalent;
use anyscan_scan_common::ScanParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn thread_sweep_on_lfr() {
    let mut rng = StdRng::seed_from_u64(300);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(2_500, 20.0));
    let params = ScanParams::new(0.45, 5);
    let truth = scan(&g, params).clustering;
    for threads in [1usize, 2, 3, 4, 8, 16] {
        let config = AnyScanConfig::new(params)
            .with_threads(threads)
            .with_auto_block_size(g.num_vertices());
        let result = AnyScan::new(&g, config).run();
        assert_scan_equivalent(&g, params, &truth, &result);
    }
}

#[test]
fn thread_sweep_with_locked_dsu() {
    let mut rng = StdRng::seed_from_u64(301);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 800,
            num_communities: 8,
            p_in: 0.4,
            p_out: 0.01,
            weights: WeightModel::uniform_default(),
        },
    );
    let params = ScanParams::new(0.4, 5);
    let truth = scan(&g, params).clustering;
    for threads in [2usize, 4, 8] {
        let mut config = AnyScanConfig::new(params)
            .with_threads(threads)
            .with_block_size(128);
        config.dsu = DsuKind::Locked;
        let result = AnyScan::new(&g, config).run();
        assert_scan_equivalent(&g, params, &truth, &result);
    }
}

#[test]
fn tiny_blocks_with_many_threads() {
    // Pathological config: more threads than the block size. Exercises the
    // thread clamping and the atomic state transitions under maximum
    // interleaving.
    let mut rng = StdRng::seed_from_u64(302);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(600, 14.0));
    let params = ScanParams::new(0.4, 4);
    let truth = scan(&g, params).clustering;
    let config = AnyScanConfig::new(params)
        .with_threads(16)
        .with_block_size(4);
    let result = AnyScan::new(&g, config).run();
    assert_scan_equivalent(&g, params, &truth, &result);
}

#[test]
fn counters_are_coherent_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(303);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(1_200, 16.0));
    let params = ScanParams::new(0.45, 5);
    let mut union_totals = Vec::new();
    for threads in [1usize, 4] {
        let config = AnyScanConfig::new(params)
            .with_threads(threads)
            .with_auto_block_size(g.num_vertices());
        let mut algo = AnyScan::new(&g, config);
        let result = algo.run();
        let u = algo.union_breakdown();
        // Every successful union reduces the number of super-node sets by
        // one, so total unions = #super-nodes − #clusters... except noise
        // super-nodes do not exist; clusters = distinct roots among
        // super-nodes.
        assert!(u.total() < algo.num_supernodes() as u64);
        assert!(algo.stats().sigma_evals > 0);
        assert!(result.num_clusters() > 0);
        union_totals.push((algo.num_supernodes() as u64, u.total()));
    }
    // Same seed → same step-1 draw order → identical super-node structure
    // regardless of thread count.
    assert_eq!(
        union_totals[0].0, union_totals[1].0,
        "super-node count must not depend on threads"
    );
}

#[test]
fn parallel_counters_match_sequential_supernode_structure() {
    let mut rng = StdRng::seed_from_u64(304);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(1_000, 16.0));
    let params = ScanParams::new(0.45, 5);
    let config = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());

    let mut seq = AnyScan::new(&g, config);
    let _ = seq.run();
    let mut par = AnyScan::new(&g, config.with_threads(4));
    let _ = par.run();

    assert_eq!(seq.num_supernodes(), par.num_supernodes());
    // Union totals agree too: the partition of super-nodes is unique even
    // though the order of unions differs.
    assert_eq!(seq.union_breakdown().total(), par.union_breakdown().total());
}
