//! Failure-injection and robustness tests across crate boundaries: corrupt
//! inputs, degenerate graphs, hostile parameters.

use anyscan::{anyscan, AnyScan, AnyScanConfig};
use anyscan_baselines::scan;
use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_graph::io::{read_binary, read_edge_list, write_binary};
use anyscan_graph::{GraphBuilder, GraphError};
use anyscan_scan_common::verify::assert_scan_equivalent;
use anyscan_scan_common::{Role, ScanParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn corrupt_binary_files_are_rejected_not_crashed() {
    let mut rng = StdRng::seed_from_u64(500);
    let g = erdos_renyi(&mut rng, 100, 400, WeightModel::Unit);
    let mut buf = Vec::new();
    write_binary(&g, &mut buf).unwrap();
    // Bit-flip every 97th byte in turn: each corruption must yield Err or a
    // graph that still satisfies all invariants — never a panic.
    for i in (0..buf.len()).step_by(97) {
        let mut bad = buf.clone();
        bad[i] ^= 0x5A;
        if let Ok(g2) = read_binary(bad.as_slice()) {
            g2.check_invariants().unwrap();
        }
    }
}

#[test]
fn malformed_edge_lists_error_cleanly() {
    for bad in [
        "1 2 3 4 5\nx\n",
        "-1 2\n",
        "999999999999999 0\n",
        "0 1 nanana\n",
    ] {
        let r = read_edge_list(bad.as_bytes(), None);
        assert!(
            matches!(r, Err(GraphError::Parse { .. })),
            "input {bad:?} not rejected"
        );
    }
}

#[test]
fn extreme_parameters_do_not_break_anything() {
    let mut rng = StdRng::seed_from_u64(501);
    let g = erdos_renyi(&mut rng, 150, 900, WeightModel::uniform_default());
    for params in [
        ScanParams::new(1.0, 1),      // only self-similar neighbors
        ScanParams::new(1e-9, 1),     // everything similar
        ScanParams::new(0.5, 10_000), // mu beyond any degree
        ScanParams::new(0.999999, 2),
    ] {
        let truth = scan(&g, params);
        let ours = anyscan(&g, params);
        assert_scan_equivalent(&g, params, &truth.clustering, &ours.clustering);
    }
}

#[test]
fn mu_larger_than_every_degree_yields_pure_noise() {
    let mut rng = StdRng::seed_from_u64(502);
    let g = erdos_renyi(&mut rng, 100, 300, WeightModel::Unit);
    let out = anyscan(&g, ScanParams::new(0.5, 1_000));
    assert_eq!(out.clustering.num_clusters(), 0);
    assert!(out
        .clustering
        .roles
        .iter()
        .all(|&r| matches!(r, Role::Outlier | Role::Hub)));
    // Work efficiency in the degenerate case: the degree shortcut should
    // avoid every similarity evaluation.
    assert_eq!(
        out.stats.sigma_evals, 0,
        "|Γ| < μ must short-circuit all queries"
    );
}

#[test]
fn disconnected_components_cluster_independently() {
    // Two cliques with no connection at all.
    let mut b = GraphBuilder::new(10);
    for base in [0u32, 5] {
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(base + i, base + j, 1.0);
            }
        }
    }
    let g = b.build();
    let out = anyscan(&g, ScanParams::new(0.5, 3));
    assert_eq!(out.clustering.num_clusters(), 2);
    assert_ne!(out.clustering.labels[0], out.clustering.labels[5]);
}

#[test]
fn zero_step_runs_and_immediate_result_queries() {
    let g = GraphBuilder::new(3).build();
    let config = AnyScanConfig::default();
    let mut algo = AnyScan::new(&g, config);
    // Snapshot before any step: everything unclassified... isolated
    // vertices have |Γ| = 1 < μ and are simply untouched so far.
    let snap = algo.snapshot();
    assert_eq!(snap.role_counts().unclassified, 3);
    let result = algo.run();
    assert_eq!(result.role_counts().outliers, 3);
}

#[test]
#[should_panic(expected = "requires a finished run")]
fn result_before_done_panics() {
    let mut rng = StdRng::seed_from_u64(503);
    let g = erdos_renyi(&mut rng, 200, 1_000, WeightModel::Unit);
    let algo = AnyScan::new(&g, AnyScanConfig::default().with_block_size(16));
    let _ = algo.result();
}

#[test]
fn self_loops_and_duplicate_edges_in_input_are_normalized() {
    let text = "0 1 0.5\n1 0 0.9\n0 0 7.0\n1 2 1.0\n";
    let g = read_edge_list(text.as_bytes(), None).unwrap();
    assert_eq!(g.num_edges(), 2);
    assert_eq!(g.edge_weight(0, 1), Some(0.9)); // max weight wins
    let out = anyscan(&g, ScanParams::new(0.5, 2));
    assert_eq!(out.clustering.len(), 3);
}
