//! Cross-algorithm exactness: SCAN, SCAN-B, pSCAN, SCAN++ and anySCAN must
//! produce SCAN-equivalent results over a grid of generators and parameters.

use anyscan::anyscan;
use anyscan_baselines::{pscan, scan, scan_b, scanpp};
use anyscan_graph::gen::{
    erdos_renyi, lfr, planted_partition, rmat, LfrParams, PlantedPartitionParams, RmatParams,
    WeightModel,
};
use anyscan_graph::CsrGraph;
use anyscan_scan_common::{Clustering, ScanParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_all(g: &CsrGraph, params: ScanParams) {
    let truth = scan(g, params).clustering;
    let runs: Vec<(&str, Clustering)> = vec![
        ("SCAN-B", scan_b(g, params).clustering),
        ("pSCAN", pscan(g, params).clustering),
        ("SCAN++", scanpp(g, params).clustering),
        ("anySCAN", anyscan(g, params).clustering),
    ];
    for (name, c) in runs {
        if let Err(e) = anyscan_scan_common::verify::check_scan_equivalent(g, params, &truth, &c) {
            panic!(
                "{name} diverged (eps={}, mu={}): {e}",
                params.epsilon, params.mu
            );
        }
    }
}

#[test]
fn grid_over_erdos_renyi() {
    let mut rng = StdRng::seed_from_u64(100);
    for (n, m) in [(60usize, 200usize), (200, 1_500), (400, 6_000)] {
        let g = erdos_renyi(&mut rng, n, m, WeightModel::uniform_default());
        for eps in [0.25, 0.5, 0.75] {
            for mu in [2usize, 5] {
                check_all(&g, ScanParams::new(eps, mu));
            }
        }
    }
}

#[test]
fn grid_over_planted_partitions() {
    let mut rng = StdRng::seed_from_u64(101);
    for (p_in, p_out) in [(0.5, 0.002), (0.3, 0.02), (0.15, 0.05)] {
        let (g, _) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 400,
                num_communities: 8,
                p_in,
                p_out,
                weights: WeightModel::CommunityCorrelated,
            },
        );
        for eps in [0.3, 0.5, 0.7] {
            check_all(&g, ScanParams::new(eps, 4));
        }
    }
}

#[test]
fn grid_over_lfr() {
    let mut rng = StdRng::seed_from_u64(102);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(1_500, 20.0));
    for eps in [0.35, 0.5, 0.65] {
        for mu in [3usize, 8] {
            check_all(&g, ScanParams::new(eps, mu));
        }
    }
}

#[test]
fn rmat_power_law_graph() {
    let mut rng = StdRng::seed_from_u64(103);
    let g = rmat(&mut rng, &RmatParams::graph500(9, 12));
    for eps in [0.3, 0.5] {
        check_all(&g, ScanParams::new(eps, 5));
    }
}

#[test]
fn unit_weights_reduce_to_original_scan() {
    // With unit weights, Definition 1 must behave exactly like unweighted
    // SCAN: cross-check the whole family on an unweighted graph.
    let mut rng = StdRng::seed_from_u64(104);
    let g = erdos_renyi(&mut rng, 300, 2_500, WeightModel::Unit);
    for eps in [0.4, 0.6, 0.8] {
        check_all(&g, ScanParams::new(eps, 4));
    }
}
