//! Anytime-property tests: the two requirements the paper adopts from
//! Zilberstein [7] — (1) the final result matches the batch algorithm, and
//! (2) quality improves monotonically enough that early interruption is
//! useful — plus suspend/resume semantics.

use anyscan::{AnyScan, AnyScanConfig, Phase};
use anyscan_baselines::scan;
use anyscan_graph::gen::{lfr, LfrParams};
use anyscan_metrics::nmi;
use anyscan_scan_common::{ScanParams, UNCLASSIFIED};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> anyscan_graph::CsrGraph {
    let mut rng = StdRng::seed_from_u64(200);
    let mut p = LfrParams::paper_defaults(2_000, 18.0);
    p.mixing = 0.25;
    lfr(&mut rng, &p).0
}

#[test]
fn interrupted_at_every_phase_yields_a_usable_result() {
    let g = workload();
    let params = ScanParams::new(0.45, 5);
    let truth = scan(&g, params).clustering.labels_with_noise_cluster();
    let config = AnyScanConfig::new(params).with_block_size(100);

    // Interrupt right after each phase completes; the snapshot must be a
    // full labeling (no panics, labels for all vertices) and its NMI must
    // grow as later phases are reached.
    let mut scores = Vec::new();
    for stop_phase in [
        Phase::MergeStrong,
        Phase::MergeWeak,
        Phase::Borders,
        Phase::Done,
    ] {
        let mut algo = AnyScan::new(&g, config);
        while algo.phase() != stop_phase && algo.phase() != Phase::Done {
            algo.step();
        }
        let snap = algo.snapshot();
        assert_eq!(snap.len(), g.num_vertices());
        scores.push(nmi(&snap.labels_with_noise_cluster(), &truth));
    }
    assert!(
        scores.windows(2).all(|w| w[1] >= w[0] - 0.02),
        "phase-boundary NMI not improving: {scores:?}"
    );
    // Shared borders may legitimately sit in different (equally justified)
    // clusters than SCAN put them (Lemma 4's caveat), which costs a little
    // NMI; structural equivalence is asserted by the exactness suite.
    assert!(
        scores.last().unwrap() > &0.99,
        "final must match SCAN: {scores:?}"
    );
}

#[test]
fn snapshot_is_pure_and_stable() {
    let g = workload();
    let config = AnyScanConfig::new(ScanParams::new(0.45, 5)).with_block_size(200);
    let mut algo = AnyScan::new(&g, config);
    for _ in 0..4 {
        algo.step();
    }
    // Repeated snapshots without stepping must be identical, and must not
    // change counters.
    let evals_before = algo.stats().sigma_evals;
    let s1 = algo.snapshot();
    let s2 = algo.snapshot();
    assert_eq!(s1, s2);
    assert_eq!(
        algo.stats().sigma_evals,
        evals_before,
        "snapshot must do no similarity work"
    );
}

#[test]
fn early_snapshots_leave_untouched_vertices_unclassified() {
    let g = workload();
    let config = AnyScanConfig::new(ScanParams::new(0.45, 5)).with_block_size(64);
    let mut algo = AnyScan::new(&g, config);
    algo.step();
    let snap = algo.snapshot();
    let unclassified = snap.labels.iter().filter(|&&l| l == UNCLASSIFIED).count();
    assert!(
        unclassified > 0,
        "after one 64-vertex block most of a 2000-vertex graph must still be unclassified"
    );
}

#[test]
fn step_after_done_is_a_noop() {
    let g = workload();
    let config =
        AnyScanConfig::new(ScanParams::new(0.45, 5)).with_auto_block_size(g.num_vertices());
    let mut algo = AnyScan::new(&g, config);
    let result = algo.run();
    let iterations = algo.iterations().len();
    let rec = algo.step();
    assert_eq!(rec.block_len, 0);
    assert_eq!(
        algo.iterations().len(),
        iterations,
        "no-op steps must not pollute the log"
    );
    assert_eq!(algo.result(), result);
}

#[test]
fn iteration_records_are_consistent() {
    let g = workload();
    let config = AnyScanConfig::new(ScanParams::new(0.45, 5)).with_block_size(150);
    let mut algo = AnyScan::new(&g, config);
    let _ = algo.run();
    let recs = algo.iterations();
    assert!(!recs.is_empty());
    // Indices are dense, cumulative time is monotone, phases appear in
    // order.
    let mut last_phase_rank = 0;
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.index, i);
        let rank = match r.phase {
            Phase::Summarize => 0,
            Phase::MergeStrong => 1,
            Phase::MergeWeak => 2,
            Phase::Borders => 3,
            Phase::ResolveRoles => 4,
            Phase::Done => 5,
        };
        assert!(
            rank >= last_phase_rank,
            "phase went backwards at iteration {i}"
        );
        last_phase_rank = rank;
        if i > 0 {
            assert!(r.cumulative >= recs[i - 1].cumulative);
        }
    }
    assert_eq!(algo.cumulative_time(), recs.last().unwrap().cumulative);
}
