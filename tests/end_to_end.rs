//! End-to-end runs over every generator the workspace ships, checking the
//! whole pipeline: generate → cluster → evaluate → compare.

use anyscan::anyscan;
use anyscan_baselines::scan;
use anyscan_graph::gen::{
    erdos_renyi, lfr, planted_partition, rmat, Dataset, DatasetId, LfrParams,
    PlantedPartitionParams, RmatParams, WeightModel,
};
use anyscan_graph::stats::graph_stats;
use anyscan_metrics::{adjusted_rand_index, nmi, pair_f1, purity};
use anyscan_scan_common::ScanParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn planted_partition_communities_are_recovered() {
    let mut rng = StdRng::seed_from_u64(400);
    let (g, planted) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 600,
            num_communities: 6,
            p_in: 0.5,
            p_out: 0.002,
            weights: WeightModel::CommunityCorrelated,
        },
    );
    let out = anyscan(&g, ScanParams::new(0.4, 5));
    assert_eq!(out.clustering.num_clusters(), 6);
    let found = out.clustering.labels_with_noise_cluster();
    assert!(
        nmi(&found, &planted) > 0.95,
        "NMI {}",
        nmi(&found, &planted)
    );
    assert!(adjusted_rand_index(&found, &planted) > 0.9);
    assert!(purity(&found, &planted) > 0.95);
    assert!(pair_f1(&found, &planted) > 0.9);
}

#[test]
fn lfr_ground_truth_is_substantially_recovered() {
    // LFR with mixing 0.2 and strong local structure: SCAN should align
    // with the planted communities reasonably well (SCAN clusters are finer
    // than LFR communities, so purity is the right headline metric).
    let mut rng = StdRng::seed_from_u64(401);
    let mut p = LfrParams::paper_defaults(2_000, 20.0);
    p.mixing = 0.2;
    p.triangle_closure = 0.8;
    p.weights = WeightModel::CommunityCorrelated;
    let (g, planted) = lfr(&mut rng, &p);
    let out = anyscan(&g, ScanParams::new(0.4, 4));
    assert!(out.clustering.num_clusters() > 0);
    let found = out.clustering.labels_with_noise_cluster();
    assert!(
        purity(&found, &planted) > 0.75,
        "purity {} too low",
        purity(&found, &planted)
    );
}

#[test]
fn every_dataset_in_the_registry_generates_and_clusters() {
    // Small scale: this is a smoke test of the full registry.
    for d in Dataset::all() {
        let (g, labels) = d.generate_scaled(0.05, 11);
        g.check_invariants().unwrap();
        assert!(g.num_vertices() > 0, "{:?} generated an empty graph", d.id);
        if let Some(l) = &labels {
            assert_eq!(l.len(), g.num_vertices());
        }
        let out = anyscan(&g, ScanParams::paper_defaults());
        assert_eq!(out.clustering.len(), g.num_vertices());
    }
}

#[test]
fn serialization_roundtrip_preserves_clustering() {
    let mut rng = StdRng::seed_from_u64(402);
    let g = erdos_renyi(&mut rng, 300, 2_000, WeightModel::uniform_default());
    let params = ScanParams::new(0.4, 4);
    let direct = anyscan(&g, params);

    // Text roundtrip.
    let mut text = Vec::new();
    anyscan_graph::io::write_edge_list(&g, &mut text).unwrap();
    let g2 = anyscan_graph::io::read_edge_list(text.as_slice(), Some(g.num_vertices())).unwrap();
    assert_eq!(g, g2);
    // Binary roundtrip.
    let mut bin = Vec::new();
    anyscan_graph::io::write_binary(&g, &mut bin).unwrap();
    let g3 = anyscan_graph::io::read_binary(bin.as_slice()).unwrap();
    assert_eq!(g, g3);

    let reloaded = anyscan(&g3, params);
    assert_eq!(direct.clustering, reloaded.clustering);
}

#[test]
fn stats_runtime_invariants_hold_on_generated_graphs() {
    let mut rng = StdRng::seed_from_u64(403);
    let g = rmat(&mut rng, &RmatParams::graph500(10, 8));
    let s = graph_stats(&g);
    assert_eq!(s.num_vertices, 1024);
    assert!(s.average_degree > 0.0);
    assert!(s.average_clustering_coefficient >= 0.0 && s.average_clustering_coefficient <= 1.0);
    assert!(s.global_clustering_coefficient >= 0.0 && s.global_clustering_coefficient <= 1.0);
    assert!(s.max_degree >= s.min_degree);
}

#[test]
fn scan_on_dataset_analogue_matches_anyscan() {
    let d = Dataset::get(DatasetId::Gr02);
    let (g, _) = d.generate_scaled(0.1, 5);
    let params = ScanParams::paper_defaults();
    let truth = scan(&g, params);
    let ours = anyscan(&g, params);
    anyscan_scan_common::verify::assert_scan_equivalent(
        &g,
        params,
        &truth.clustering,
        &ours.clustering,
    );
    assert!(ours.stats.sigma_evals <= truth.stats.sigma_evals);
}
