//! Quickstart: build a small weighted graph, cluster it with anySCAN, and
//! inspect clusters, borders, hubs and outliers.
//!
//! Run with: `cargo run --release -p anyscan --example quickstart`

use anyscan::{anyscan, AnyScan, AnyScanConfig};
use anyscan_graph::GraphBuilder;
use anyscan_scan_common::{Role, ScanParams, NOISE};

fn main() {
    // Two tightly-knit groups (4-cliques) joined through vertex 8, plus a
    // loner (vertex 9). Edge weights express interaction strength.
    let mut b = GraphBuilder::new(10);
    for group in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
        for (i, &u) in group.iter().enumerate() {
            for &v in &group[i + 1..] {
                b.add_edge(u, v, 0.9);
            }
        }
    }
    b.add_edge(3, 8, 0.6); // 8 bridges both groups weakly
    b.add_edge(4, 8, 0.6);
    let g = b.build();

    // SCAN parameters: σ threshold ε and core threshold μ.
    let params = ScanParams::new(0.6, 3);

    // One-shot batch API.
    let out = anyscan(&g, params);
    println!("clusters found: {}", out.clustering.num_clusters());
    println!("similarity evaluations: {}", out.stats.sigma_evals);
    for v in 0..g.num_vertices() as u32 {
        let label = out.clustering.labels[v as usize];
        let role = out.clustering.roles[v as usize];
        let shown = if label == NOISE {
            "-".to_string()
        } else {
            format!("{label}")
        };
        println!("  vertex {v}: cluster {shown:>2}  role {role:?}");
    }

    // Vertex 8 touches both clusters without belonging to either: a hub.
    assert_eq!(out.clustering.roles[8], Role::Hub);
    // Vertex 9 is isolated: an outlier.
    assert_eq!(out.clustering.roles[9], Role::Outlier);

    // The same run, driven step by step (the anytime API).
    let mut algo = AnyScan::new(&g, AnyScanConfig::new(params));
    while algo.phase() != anyscan::Phase::Done {
        let progress = algo.step();
        println!(
            "step {:>2}: phase {:?}, {} vertices, cumulative {:?}",
            progress.index, progress.phase, progress.block_len, progress.cumulative
        );
    }
    assert_eq!(algo.result().num_clusters(), 2);
    println!(
        "done: {} super-nodes, unions {:?}",
        algo.num_supernodes(),
        algo.union_breakdown()
    );
}
