//! Community detection on an LFR benchmark graph with planted ground truth:
//! compare all five algorithms for speed, verify they agree, score the
//! recovered communities against the planted ones, and list the biggest
//! hubs — the workload the paper's introduction motivates (finding
//! communities of people in social networks).
//!
//! Run with: `cargo run --release -p anyscan --example community_detection`

use anyscan::anyscan;
use anyscan_baselines::{pscan, scan, scan_b, scanpp};
use anyscan_graph::gen::{lfr, LfrParams};
use anyscan_metrics::{adjusted_rand_index, nmi};
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{Role, ScanParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // An LFR social-network benchmark: power-law degrees and community
    // sizes, 25% of edges leaving their community.
    let mut params_gen = LfrParams::paper_defaults(8_000, 24.0);
    params_gen.mixing = 0.25;
    let mut rng = StdRng::seed_from_u64(2024);
    let (g, planted) = lfr(&mut rng, &params_gen);
    println!(
        "LFR graph: {} vertices, {} edges, {} planted communities",
        g.num_vertices(),
        g.num_edges(),
        planted.iter().max().map(|&m| m as usize + 1).unwrap_or(0)
    );

    let params = ScanParams::new(0.45, 5);

    // Race the five algorithms.
    let t0 = Instant::now();
    let truth = scan(&g, params);
    println!(
        "SCAN     {:>9.3?}  ({} σ evals)",
        t0.elapsed(),
        truth.stats.sigma_evals
    );
    let t0 = Instant::now();
    let b = scan_b(&g, params);
    println!(
        "SCAN-B   {:>9.3?}  ({} σ evals)",
        t0.elapsed(),
        b.stats.sigma_evals
    );
    let t0 = Instant::now();
    let p = pscan(&g, params);
    println!(
        "pSCAN    {:>9.3?}  ({} σ evals)",
        t0.elapsed(),
        p.stats.sigma_evals
    );
    let t0 = Instant::now();
    let spp = scanpp(&g, params);
    println!(
        "SCAN++   {:>9.3?}  ({} true + {} shared σ evals)",
        t0.elapsed(),
        spp.stats.sigma_evals,
        spp.stats.shared_evals
    );
    let t0 = Instant::now();
    let any = anyscan(&g, params);
    println!(
        "anySCAN  {:>9.3?}  ({} σ evals)",
        t0.elapsed(),
        any.stats.sigma_evals
    );

    // They must all be the same clustering (Lemma 4 / exactness of pSCAN &
    // SCAN++).
    for (name, c) in [
        ("SCAN-B", &b.clustering),
        ("pSCAN", &p.clustering),
        ("SCAN++", &spp.clustering),
        ("anySCAN", &any.clustering),
    ] {
        check_scan_equivalent(&g, params, &truth.clustering, c)
            .unwrap_or_else(|e| panic!("{name} diverged from SCAN: {e}"));
    }
    println!("all five algorithms agree (SCAN-equivalence verified)");

    // How well do the SCAN clusters recover the planted communities?
    let found = any.clustering.labels_with_noise_cluster();
    println!(
        "vs planted communities: NMI = {:.3}, ARI = {:.3}",
        nmi(&found, &planted),
        adjusted_rand_index(&found, &planted)
    );

    // The most connective hubs (vertices bridging several communities).
    let mut hubs: Vec<u32> = (0..g.num_vertices() as u32)
        .filter(|&v| any.clustering.roles[v as usize] == Role::Hub)
        .collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(g.open_degree(v)));
    let rc = any.clustering.role_counts();
    println!(
        "roles: {} cores, {} borders, {} hubs, {} outliers",
        rc.cores, rc.borders, rc.hubs, rc.outliers
    );
    for &h in hubs.iter().take(5) {
        let mut neighbor_clusters: Vec<u32> = g
            .neighbor_ids(h)
            .iter()
            .filter(|&&q| q != h)
            .map(|&q| any.clustering.labels[q as usize])
            .filter(|&l| l != anyscan_scan_common::NOISE)
            .collect();
        neighbor_clusters.sort_unstable();
        neighbor_clusters.dedup();
        println!(
            "  hub {h}: degree {}, touches {} clusters",
            g.open_degree(h),
            neighbor_clusters.len()
        );
    }
}
