//! Parallel anySCAN: sweep thread counts over a dense graph and report the
//! per-phase behaviour and the speedup curve, plus the lock-free vs
//! mutex-protected DSU comparison.
//!
//! NOTE: inside a single-CPU container the "speedups" show scheduling
//! overhead only; on real multicore hardware this example reproduces the
//! shape of the paper's Fig. 10.
//!
//! Run with: `cargo run --release -p anyscan --example parallel_scaling`

use std::time::Instant;

use anyscan::{AnyScan, AnyScanConfig, DsuKind, Phase};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("hardware CPUs visible: {cpus}");

    let (g, _) = Dataset::get(DatasetId::Gr01).generate(7);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    let params = ScanParams::paper_defaults();
    let block = (g.num_vertices() / 16).max(64); // parallel regime: big blocks

    let mut base = None;
    for threads in [1usize, 2, 4, 8, 16] {
        let config = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_threads(threads);
        let mut algo = AnyScan::new(&g, config);
        let start = Instant::now();
        let mut phase_times = Vec::new();
        let mut current = (Phase::Summarize, Instant::now());
        while algo.phase() != Phase::Done {
            let rec = algo.step();
            if rec.phase != current.0 {
                phase_times.push((current.0, current.1.elapsed()));
                current = (rec.phase, Instant::now());
            }
        }
        let total = start.elapsed();
        let b = *base.get_or_insert(total);
        println!(
            "threads={threads:>2}: total {total:>9.3?}  speedup {:.2}  clusters {}",
            b.as_secs_f64() / total.as_secs_f64(),
            algo.result().num_clusters()
        );
        for (phase, t) in phase_times {
            println!("             {phase:?}: {t:.3?}");
        }
    }

    // DSU ablation: `omp critical`-style mutex vs the lock-free structure.
    println!("\nDSU variant comparison (8 threads):");
    for (name, kind) in [
        ("lock-free (AtomicDsu)", DsuKind::Atomic),
        ("mutex (LockedDsu)", DsuKind::Locked),
    ] {
        let mut config = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_threads(8);
        config.dsu = kind;
        let start = Instant::now();
        let mut algo = AnyScan::new(&g, config);
        let _ = algo.run();
        println!(
            "  {name}: {:?} (unions {:?})",
            start.elapsed(),
            algo.union_breakdown()
        );
    }
}
