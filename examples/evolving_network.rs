//! Clustering an evolving network: maintain SCAN clusters while edges churn
//! (the DENGRAPH-style incremental extension), and use the ε-hierarchy to
//! pick parameters up front.
//!
//! Run with: `cargo run --release -p anyscan --example evolving_network`

use anyscan::hierarchy::EpsilonHierarchy;
use anyscan::incremental::DynamicScan;
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams, WeightModel};
use anyscan_graph::AdjGraph;
use anyscan_scan_common::ScanParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // A social network with 8 planted communities.
    let mut rng = StdRng::seed_from_u64(31);
    let (csr, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 1_200,
            num_communities: 8,
            p_in: 0.4,
            p_out: 0.005,
            weights: WeightModel::CommunityCorrelated,
        },
    );
    println!(
        "initial network: {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_edges()
    );

    // 1. Pick ε with the hierarchy (one similarity pass, every ε answered).
    let h = EpsilonHierarchy::build(&csr, 5, 1);
    let grid: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let counts = h.cluster_counts(&grid);
    for (e, c) in grid.iter().zip(&counts) {
        println!("  eps {e:.1} -> {c} clusters");
    }
    // Choose the widest stable non-trivial plateau.
    let eps = grid
        .iter()
        .zip(&counts)
        .filter(|&(_, &c)| c == 8)
        .map(|(&e, _)| e)
        .next()
        .unwrap_or(0.4);
    println!("chosen eps = {eps} (mu = 5)\n");

    // 2. Go dynamic: churn 2000 random edge updates through the network.
    let params = ScanParams::new(eps, 5);
    let mut ds = DynamicScan::new(AdjGraph::from_csr(&csr), params);
    println!("t=0: {} clusters", ds.clustering().num_clusters());

    let n = csr.num_vertices() as u32;
    let start = Instant::now();
    let before = ds.recomputations();
    for step in 1..=2_000u32 {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if u == v {
            continue;
        }
        if rng.gen_bool(0.55) {
            let w = rng.gen_range(0.3..1.0);
            ds.insert_edge(u, v, w).expect("valid update");
        } else {
            ds.remove_edge(u, v);
        }
        if step % 500 == 0 {
            let c = ds.clustering();
            let rc = c.role_counts();
            println!(
                "t={step}: {} clusters, {} cores, {} hubs (edges {})",
                c.num_clusters(),
                rc.cores,
                rc.hubs,
                ds.graph().num_edges()
            );
        }
    }
    let updates_cost = ds.recomputations() - before;
    println!(
        "\n2000 updates in {:?}: {} σ recomputations total (~{:.1} per update; a from-scratch \
         rebuild would pay ~{} each)",
        start.elapsed(),
        updates_cost,
        updates_cost as f64 / 2_000.0,
        ds.graph().num_edges()
    );
}
