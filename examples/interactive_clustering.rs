//! Interactive (anytime) clustering: run anySCAN on a graph too big to wait
//! for, suspend it at arbitrary points, inspect the best-so-far clustering,
//! and resume — the workflow the paper's title promises.
//!
//! Run with: `cargo run --release -p anyscan --example interactive_clustering`

use std::time::Duration;

use anyscan::{AnyScan, AnyScanConfig, Phase};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_metrics::nmi;
use anyscan_scan_common::ScanParams;

fn main() {
    // A soc-LiveJournal-like graph (Table I analogue).
    let (g, _) = Dataset::get(DatasetId::Gr02).generate_scaled(0.5, 7);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let params = ScanParams::paper_defaults();
    let config = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());
    let mut algo = AnyScan::new(&g, config);

    // Pretend the user checks in every 20 ms of compute.
    let checkpoint = Duration::from_millis(20);
    let mut next_check = checkpoint;
    let mut inspections = Vec::new();
    while algo.phase() != Phase::Done {
        algo.step();
        if algo.cumulative_time() >= next_check || algo.phase() == Phase::Done {
            next_check += checkpoint;
            // ---- suspended: the user looks at the current result ----
            let snapshot = algo.snapshot();
            let rc = snapshot.role_counts();
            println!(
                "[{:?} in {:?}] clusters={:<5} cores={:<6} unclassified={}",
                algo.cumulative_time(),
                algo.phase(),
                snapshot.num_clusters(),
                rc.cores,
                rc.unclassified,
            );
            inspections.push(snapshot);
            // ---- resumed ----
        }
    }
    let final_result = algo.result();
    println!(
        "final: {} clusters after {:?} ({} σ evaluations)",
        final_result.num_clusters(),
        algo.cumulative_time(),
        algo.stats().sigma_evals
    );

    // How close was each inspection to the final answer?
    let truth = final_result.labels_with_noise_cluster();
    for (i, snap) in inspections.iter().enumerate() {
        let score = nmi(&snap.labels_with_noise_cluster(), &truth);
        println!("inspection {i}: NMI vs final = {score:.3}");
    }
}
